//! Physical operators over [`Relation`]s.
//!
//! CFD detection needs only a handful of operators (the centralized
//! technique of Fan et al., TODS 2008 compiles to selections, projections
//! and a single GROUP BY; vertical-partition detection adds key joins).
//! All hash-based operators use the Fx hasher from [`crate::fxhash`].

use crate::error::RelationError;
use crate::fxhash::{FxHashMap, FxHashSet};
use crate::predicate::Predicate;
use crate::relation::Relation;
use crate::schema::{AttrId, Schema};
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use std::sync::Arc;

/// `σ_P(D)`: tuples of `rel` satisfying `pred`, ids preserved.
pub fn select(rel: &Relation, pred: &Predicate) -> Relation {
    let mut out = Relation::new(rel.schema().clone());
    for t in rel.iter() {
        if pred.eval(t) {
            // Tuples validated on the way in; re-push preserves the id.
            out.push_tuple(t.clone()).expect("selected tuple matches schema");
        }
    }
    out
}

/// `π_X(D)` as a new relation named `name`, preserving tuple ids and
/// duplicates (bag projection).
pub fn project(rel: &Relation, name: &str, attrs: &[AttrId]) -> Result<Relation, RelationError> {
    let schema = rel.schema().project(name, attrs)?;
    let mut out = Relation::with_capacity(schema, rel.len());
    for t in rel.iter() {
        out.push_tuple(Tuple::new(t.tid, t.project(attrs)))?;
    }
    Ok(out)
}

/// Distinct rows of `π_X(D)` as value vectors (set projection).
pub fn project_distinct(rel: &Relation, attrs: &[AttrId]) -> Vec<Vec<Value>> {
    let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
    let mut out = Vec::new();
    for t in rel.iter() {
        let key = t.project(attrs);
        if seen.insert(key.clone()) {
            out.push(key);
        }
    }
    out
}

/// Groups tuple indices of `rel` by their projection on `attrs`
/// (the GROUP BY at the heart of CFD violation detection).
///
/// Returns a map from group key `t[X]` to the positions (indices into
/// `rel.tuples()`) of the tuples in that group.
pub fn group_by(rel: &Relation, attrs: &[AttrId]) -> FxHashMap<Vec<Value>, Vec<usize>> {
    group_by_filtered(rel, attrs, |_| true)
}

/// [`group_by`] restricted to tuples accepted by `filter`.
pub fn group_by_filtered(
    rel: &Relation,
    attrs: &[AttrId],
    filter: impl Fn(&Tuple) -> bool,
) -> FxHashMap<Vec<Value>, Vec<usize>> {
    let mut groups: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for (i, t) in rel.iter().enumerate() {
        if filter(t) {
            groups.entry(t.project(attrs)).or_default().push(i);
        }
    }
    groups
}

/// Sorts tuples by their projection on `attrs` (ascending, stable),
/// returning a new relation. Used only by small/reporting paths.
pub fn sort_by(rel: &Relation, attrs: &[AttrId]) -> Relation {
    let mut tuples = rel.tuples().to_vec();
    tuples.sort_by_key(|a| a.project(attrs));
    Relation::from_tuples(rel.schema().clone(), tuples).expect("sorted tuples match schema")
}

/// Equi-join of two relations on attribute lists of equal length,
/// producing `name` with the left schema followed by the right schema
/// minus its join attributes. Tuple ids are taken from the left input.
///
/// This is the reconstruction join `D = ⋈ D_i` for vertical partitions
/// (§II-B): vertical fragments join on `key(R)`.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_on: &[AttrId],
    right_on: &[AttrId],
    name: &str,
) -> Result<Relation, RelationError> {
    if left_on.len() != right_on.len() {
        return Err(RelationError::SchemaMismatch {
            detail: format!("join key arity mismatch: {} vs {}", left_on.len(), right_on.len()),
        });
    }
    // Output schema: all of left, then right minus join attrs.
    let right_keep: Vec<AttrId> =
        right.schema().attr_ids().filter(|a| !right_on.contains(a)).collect();
    let mut b = Schema::builder(name);
    for a in left.schema().attrs() {
        b = b.attr(&a.name, a.ty);
    }
    for &a in &right_keep {
        let attr = right.schema().attr(a);
        b = b.attr(&attr.name, attr.ty);
    }
    let key_names: Vec<String> =
        left.schema().key().iter().map(|&k| left.schema().attr_name(k).to_string()).collect();
    if !key_names.is_empty() {
        let refs: Vec<&str> = key_names.iter().map(String::as_str).collect();
        b = b.key(&refs);
    }
    let schema = b.build()?;

    // Build side: the smaller input.
    let mut index: FxHashMap<Vec<Value>, Vec<usize>> = FxHashMap::default();
    for (i, t) in right.iter().enumerate() {
        index.entry(t.project(right_on)).or_default().push(i);
    }
    let mut out = Relation::with_capacity(schema, left.len());
    for lt in left.iter() {
        let key = lt.project(left_on);
        if let Some(matches) = index.get(&key) {
            for &ri in matches {
                let rt = &right.tuples()[ri];
                let mut vals = Vec::with_capacity(lt.arity() + right_keep.len());
                vals.extend_from_slice(lt.values());
                for &a in &right_keep {
                    vals.push(rt.get(a).clone());
                }
                out.push_tuple(Tuple::new(lt.tid, vals))?;
            }
        }
    }
    Ok(out)
}

/// Left semijoin: tuples of `left` that have at least one join partner in
/// `right` on the given attribute lists. Ids preserved.
///
/// This is the shipment-reduction primitive for vertical-partition
/// detection (§VII points at semijoins — ref. \[25\] — for the vertical case).
pub fn semijoin(
    left: &Relation,
    right: &Relation,
    left_on: &[AttrId],
    right_on: &[AttrId],
) -> Result<Relation, RelationError> {
    if left_on.len() != right_on.len() {
        return Err(RelationError::SchemaMismatch {
            detail: format!("semijoin key arity mismatch: {} vs {}", left_on.len(), right_on.len()),
        });
    }
    let mut keys: FxHashSet<Vec<Value>> = FxHashSet::default();
    for t in right.iter() {
        keys.insert(t.project(right_on));
    }
    let mut out = Relation::new(left.schema().clone());
    for t in left.iter() {
        if keys.contains(&t.project(left_on)) {
            out.push_tuple(t.clone())?;
        }
    }
    Ok(out)
}

/// Unions relations sharing one schema into a single relation
/// (fragment reassembly `D = ⋃ D_i` for horizontal partitions).
/// Duplicate tuple ids are kept as-is; horizontal fragments are disjoint
/// by definition so ids never collide in intended use.
pub fn union_all(schema: Arc<Schema>, parts: &[&Relation]) -> Result<Relation, RelationError> {
    let total = parts.iter().map(|r| r.len()).sum();
    let mut out = Relation::with_capacity(schema.clone(), total);
    for part in parts {
        if part.schema().as_ref() != schema.as_ref() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "fragment schema `{}` differs from target `{}`",
                    part.schema().name(),
                    schema.name()
                ),
            });
        }
        for t in part.iter() {
            out.push_tuple(t.clone())?;
        }
    }
    Ok(out)
}

/// Returns the tuple ids of `rel` as a set (test helper used throughout
/// the workspace to compare violation sets).
pub fn tid_set(rel: &Relation) -> FxHashSet<TupleId> {
    rel.iter().map(|t| t.tid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::{Atom, CmpOp};
    use crate::schema::ValueType;
    use crate::vals;

    fn emp() -> Relation {
        let schema = Schema::builder("emp")
            .attr("id", ValueType::Int)
            .attr("title", ValueType::Str)
            .attr("cc", ValueType::Int)
            .key(&["id"])
            .build()
            .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vals![1, "MTS", 44],
                vals![2, "DMTS", 44],
                vals![3, "MTS", 31],
                vals![4, "VP", 1],
                vals![5, "MTS", 44],
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_preserves_ids() {
        let r = emp();
        let title = r.schema().require("title").unwrap();
        let sel = select(&r, &Predicate::atom(Atom::eq(title, "MTS")));
        assert_eq!(sel.len(), 3);
        let ids: Vec<u64> = sel.iter().map(|t| t.tid.0).collect();
        assert_eq!(ids, vec![0, 2, 4]);
    }

    #[test]
    fn project_bag_and_distinct() {
        let r = emp();
        let cc = r.schema().require("cc").unwrap();
        let p = project(&r, "emp_cc", &[cc]).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.schema().arity(), 1);
        let d = project_distinct(&r, &[cc]);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn group_by_partitions_rel() {
        let r = emp();
        let title = r.schema().require("title").unwrap();
        let groups = group_by(&r, &[title]);
        assert_eq!(groups.len(), 3);
        assert_eq!(groups[&vals!["MTS"]].len(), 3);
        assert_eq!(groups[&vals!["VP"]].len(), 1);
        // Every tuple is in exactly one group.
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, r.len());
    }

    #[test]
    fn group_by_filtered_excludes() {
        let r = emp();
        let title = r.schema().require("title").unwrap();
        let cc = r.schema().require("cc").unwrap();
        let groups = group_by_filtered(&r, &[title], |t| t.get(cc) == &Value::Int(44));
        let total: usize = groups.values().map(Vec::len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn sort_by_orders_rows() {
        let r = emp();
        let title = r.schema().require("title").unwrap();
        let s = sort_by(&r, &[title]);
        let titles: Vec<String> =
            s.iter().map(|t| t.get(title).as_str().unwrap().to_string()).collect();
        let mut expect = titles.clone();
        expect.sort();
        assert_eq!(titles, expect);
    }

    #[test]
    fn hash_join_reconstructs_vertical_split() {
        let r = emp();
        let id = r.schema().require("id").unwrap();
        let title = r.schema().require("title").unwrap();
        let cc = r.schema().require("cc").unwrap();
        let left = project(&r, "v1", &[id, title]).unwrap();
        let right = project(&r, "v2", &[id, cc]).unwrap();
        let lid = left.schema().require("id").unwrap();
        let rid = right.schema().require("id").unwrap();
        let joined = hash_join(&left, &right, &[lid], &[rid], "emp_re").unwrap();
        assert_eq!(joined.len(), r.len());
        assert_eq!(joined.schema().arity(), 3);
        // Every reconstructed row matches the original (modulo column order).
        let jid = joined.schema().require("id").unwrap();
        let jtitle = joined.schema().require("title").unwrap();
        let jcc = joined.schema().require("cc").unwrap();
        for t in joined.iter() {
            let orig = r.find(t.tid).unwrap();
            assert_eq!(t.get(jid), orig.get(id));
            assert_eq!(t.get(jtitle), orig.get(title));
            assert_eq!(t.get(jcc), orig.get(cc));
        }
    }

    #[test]
    fn hash_join_key_arity_mismatch_errors() {
        let r = emp();
        let id = r.schema().require("id").unwrap();
        let err = hash_join(&r, &r, &[id], &[], "x").unwrap_err();
        assert!(matches!(err, RelationError::SchemaMismatch { .. }));
    }

    #[test]
    fn semijoin_filters_left() {
        let r = emp();
        let cc = r.schema().require("cc").unwrap();
        let title = r.schema().require("title").unwrap();
        let right = select(&r, &Predicate::atom(Atom::new(cc, CmpOp::Eq, 44)));
        let out = semijoin(&r, &right, &[title], &[title]).unwrap();
        // Titles present among cc=44 tuples: MTS, DMTS → 4 tuples survive.
        assert_eq!(out.len(), 4);
    }

    #[test]
    fn union_all_reassembles_fragments() {
        let r = emp();
        let title = r.schema().require("title").unwrap();
        let f1 = select(&r, &Predicate::atom(Atom::eq(title, "MTS")));
        let f2 = select(&r, &Predicate::atom(Atom::eq(title, "DMTS")));
        let f3 = select(&r, &Predicate::atom(Atom::eq(title, "VP")));
        let u = union_all(r.schema().clone(), &[&f1, &f2, &f3]).unwrap();
        assert_eq!(u.len(), r.len());
        assert_eq!(tid_set(&u), tid_set(&r));
    }

    #[test]
    fn union_all_rejects_mismatched_schema() {
        let r = emp();
        let other =
            Relation::new(Schema::builder("other").attr("x", ValueType::Int).build().unwrap());
        let err = union_all(r.schema().clone(), &[&other]).unwrap_err();
        assert!(matches!(err, RelationError::SchemaMismatch { .. }));
    }
}
