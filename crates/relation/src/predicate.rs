//! Selection predicates and their satisfiability.
//!
//! Horizontal fragments are defined as `Di = σ_Fi(D)` for Boolean
//! predicates `Fi` (§II-B of the paper). The paper's "partitioning
//! condition" optimization (§IV-A) skips a site entirely when
//! `Fi ∧ Fφ` is unsatisfiable, where `Fφ` is the conjunction of the
//! constants in a pattern tuple's LHS. This module provides predicates in
//! disjunctive normal form and a **sound** satisfiability test: whenever
//! [`Conjunction::is_satisfiable`] returns `false` the formula truly has
//! no satisfying tuple, so skipping the site is always safe. (The test is
//! conservative for exotic combinations of string inequalities, which
//! never arise from fragmentation predicates in practice.)

use crate::schema::AttrId;
use crate::tuple::Tuple;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Comparison operator of an atomic condition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `≠`
    Ne,
    /// `<`
    Lt,
    /// `≤`
    Le,
    /// `>`
    Gt,
    /// `≥`
    Ge,
}

impl CmpOp {
    /// Evaluates `left op right` under the total order on [`Value`].
    /// Comparisons involving `Null` are false except `Null = Null` /
    /// `Null ≠ v`.
    pub fn eval(self, left: &Value, right: &Value) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            _ => {
                if left.is_null() || right.is_null() {
                    return false;
                }
                matches!(
                    (self, left.cmp(right)),
                    (CmpOp::Lt, Less)
                        | (CmpOp::Le, Less | Equal)
                        | (CmpOp::Gt, Greater)
                        | (CmpOp::Ge, Greater | Equal)
                )
            }
        }
    }

    /// Symbol for display.
    pub const fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

/// An atomic condition `A op c` over one attribute and one constant.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Atom {
    /// Attribute being constrained.
    pub attr: AttrId,
    /// Comparison operator.
    pub op: CmpOp,
    /// Constant operand.
    pub value: Value,
}

impl Atom {
    /// Creates an atom.
    pub fn new(attr: AttrId, op: CmpOp, value: impl Into<Value>) -> Self {
        Atom { attr, op, value: value.into() }
    }

    /// `A = c` shorthand.
    pub fn eq(attr: AttrId, value: impl Into<Value>) -> Self {
        Atom::new(attr, CmpOp::Eq, value)
    }

    /// Evaluates the atom on a tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        self.op.eval(t.get(self.attr), &self.value)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op.symbol(), self.value)
    }
}

/// A conjunction (AND) of atoms. The empty conjunction is `true`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Conjunction {
    atoms: Vec<Atom>,
}

impl Conjunction {
    /// The always-true conjunction.
    pub fn always() -> Self {
        Conjunction { atoms: Vec::new() }
    }

    /// Builds a conjunction from atoms.
    pub fn of(atoms: Vec<Atom>) -> Self {
        Conjunction { atoms }
    }

    /// Adds another atom (builder style).
    pub fn and(mut self, atom: Atom) -> Self {
        self.atoms.push(atom);
        self
    }

    /// The atoms of this conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Evaluates the conjunction on a tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        self.atoms.iter().all(|a| a.eval(t))
    }

    /// Conjoins two conjunctions.
    pub fn conjoin(&self, other: &Conjunction) -> Conjunction {
        let mut atoms = Vec::with_capacity(self.atoms.len() + other.atoms.len());
        atoms.extend_from_slice(&self.atoms);
        atoms.extend_from_slice(&other.atoms);
        Conjunction { atoms }
    }

    /// Sound satisfiability test.
    ///
    /// Returns `false` only if the conjunction provably has no satisfying
    /// tuple. Per attribute it maintains: a pinned equality value, an
    /// integer interval `[lo, hi]`, and a set of excluded values.
    /// Contradictions detected:
    ///
    /// * two distinct pinned equalities,
    /// * a pinned equality violating the interval or an exclusion,
    /// * an empty integer interval,
    /// * an interval collapsed to a point that is excluded.
    ///
    /// Order constraints on strings are handled conservatively (assumed
    /// satisfiable) unless combined with a pinned equality.
    pub fn is_satisfiable(&self) -> bool {
        #[derive(Default)]
        struct Domain {
            pinned: Option<Value>,
            lo: Option<i64>,
            hi: Option<i64>,
            excluded: Vec<Value>,
            // String order constraints we check only against pins.
            str_bounds: Vec<(CmpOp, Value)>,
        }

        let mut domains: BTreeMap<AttrId, Domain> = BTreeMap::new();
        for atom in &self.atoms {
            let d = domains.entry(atom.attr).or_default();
            match (&atom.op, &atom.value) {
                (CmpOp::Eq, v) => match &d.pinned {
                    Some(p) if p != v => return false,
                    _ => d.pinned = Some(v.clone()),
                },
                (CmpOp::Ne, v) => d.excluded.push(v.clone()),
                (op, Value::Int(c)) => {
                    // Normalize to closed integer bounds.
                    match op {
                        CmpOp::Lt => d.hi = Some(d.hi.map_or(c - 1, |h| h.min(c - 1))),
                        CmpOp::Le => d.hi = Some(d.hi.map_or(*c, |h| h.min(*c))),
                        CmpOp::Gt => d.lo = Some(d.lo.map_or(c + 1, |l| l.max(c + 1))),
                        CmpOp::Ge => d.lo = Some(d.lo.map_or(*c, |l| l.max(*c))),
                        _ => unreachable!(),
                    }
                }
                (op, v) => d.str_bounds.push((*op, v.clone())),
            }
        }

        for d in domains.values() {
            if let (Some(lo), Some(hi)) = (d.lo, d.hi) {
                if lo > hi {
                    return false;
                }
                if lo == hi && d.excluded.contains(&Value::Int(lo)) && d.pinned.is_none() {
                    return false;
                }
            }
            if let Some(p) = &d.pinned {
                if d.excluded.contains(p) {
                    return false;
                }
                if let Value::Int(i) = p {
                    if d.lo.is_some_and(|lo| *i < lo) || d.hi.is_some_and(|hi| *i > hi) {
                        return false;
                    }
                }
                for (op, bound) in &d.str_bounds {
                    if !op.eval(p, bound) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

impl fmt::Display for Conjunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " AND ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// A predicate in disjunctive normal form: an OR of conjunctions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Predicate {
    disjuncts: Vec<Conjunction>,
}

impl Predicate {
    /// The always-true predicate.
    pub fn always() -> Self {
        Predicate { disjuncts: vec![Conjunction::always()] }
    }

    /// The always-false predicate (empty disjunction).
    pub fn never() -> Self {
        Predicate { disjuncts: Vec::new() }
    }

    /// A predicate with one conjunction.
    pub fn from_conjunction(c: Conjunction) -> Self {
        Predicate { disjuncts: vec![c] }
    }

    /// A single-atom predicate.
    pub fn atom(a: Atom) -> Self {
        Predicate::from_conjunction(Conjunction::of(vec![a]))
    }

    /// The disjuncts.
    pub fn disjuncts(&self) -> &[Conjunction] {
        &self.disjuncts
    }

    /// Evaluates the predicate on a tuple.
    pub fn eval(&self, t: &Tuple) -> bool {
        self.disjuncts.iter().any(|c| c.eval(t))
    }

    /// Disjoins two predicates.
    pub fn or(mut self, other: Predicate) -> Predicate {
        self.disjuncts.extend(other.disjuncts);
        self
    }

    /// Conjoins two predicates by distributing over the disjuncts.
    pub fn and(&self, other: &Predicate) -> Predicate {
        let mut disjuncts = Vec::with_capacity(self.disjuncts.len() * other.disjuncts.len());
        for a in &self.disjuncts {
            for b in &other.disjuncts {
                disjuncts.push(a.conjoin(b));
            }
        }
        Predicate { disjuncts }
    }

    /// Sound satisfiability test: satisfiable iff some disjunct is.
    pub fn is_satisfiable(&self) -> bool {
        self.disjuncts.iter().any(Conjunction::is_satisfiable)
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.disjuncts.is_empty() {
            return write!(f, "false");
        }
        for (i, c) in self.disjuncts.iter().enumerate() {
            if i > 0 {
                write!(f, " OR ")?;
            }
            write!(f, "({c})")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple::TupleId;
    use crate::vals;

    fn t(vs: Vec<Value>) -> Tuple {
        Tuple::new(TupleId(0), vs)
    }

    const A: AttrId = AttrId(0);
    const B: AttrId = AttrId(1);

    #[test]
    fn cmp_eval_total_order() {
        assert!(CmpOp::Eq.eval(&Value::Int(1), &Value::Int(1)));
        assert!(CmpOp::Lt.eval(&Value::Int(1), &Value::Int(2)));
        assert!(CmpOp::Ge.eval(&Value::str("b"), &Value::str("a")));
        assert!(!CmpOp::Lt.eval(&Value::Null, &Value::Int(1)));
        assert!(CmpOp::Eq.eval(&Value::Null, &Value::Null));
        assert!(CmpOp::Ne.eval(&Value::Null, &Value::Int(1)));
    }

    #[test]
    fn atom_and_conjunction_eval() {
        let tup = t(vals![44, "MTS"]);
        let c = Conjunction::of(vec![Atom::eq(A, 44), Atom::eq(B, "MTS")]);
        assert!(c.eval(&tup));
        let c2 = c.clone().and(Atom::new(A, CmpOp::Gt, 50));
        assert!(!c2.eval(&tup));
        assert!(Conjunction::always().eval(&tup));
    }

    #[test]
    fn sat_contradictory_equalities() {
        let c = Conjunction::of(vec![Atom::eq(A, "MTS"), Atom::eq(A, "VP")]);
        assert!(!c.is_satisfiable());
        let c = Conjunction::of(vec![Atom::eq(A, "MTS"), Atom::eq(A, "MTS")]);
        assert!(c.is_satisfiable());
    }

    #[test]
    fn sat_interval_reasoning() {
        let c = Conjunction::of(vec![Atom::new(A, CmpOp::Gt, 10), Atom::new(A, CmpOp::Lt, 11)]);
        assert!(!c.is_satisfiable()); // no integer strictly between 10 and 11
        let c = Conjunction::of(vec![Atom::new(A, CmpOp::Ge, 10), Atom::new(A, CmpOp::Le, 10)]);
        assert!(c.is_satisfiable());
        let c = Conjunction::of(vec![
            Atom::new(A, CmpOp::Ge, 10),
            Atom::new(A, CmpOp::Le, 10),
            Atom::new(A, CmpOp::Ne, 10),
        ]);
        assert!(!c.is_satisfiable());
    }

    #[test]
    fn sat_pin_vs_interval_and_exclusions() {
        let c = Conjunction::of(vec![Atom::eq(A, 5), Atom::new(A, CmpOp::Gt, 10)]);
        assert!(!c.is_satisfiable());
        let c = Conjunction::of(vec![Atom::eq(A, 5), Atom::new(A, CmpOp::Ne, 5)]);
        assert!(!c.is_satisfiable());
        let c = Conjunction::of(vec![Atom::eq(A, "x"), Atom::new(A, CmpOp::Lt, "a")]);
        assert!(!c.is_satisfiable()); // pinned "x" violates < "a"
    }

    #[test]
    fn sat_is_conservative_for_pure_string_bounds() {
        // No pin: we cannot refute, so we must answer satisfiable.
        let c = Conjunction::of(vec![Atom::new(A, CmpOp::Lt, "a"), Atom::new(A, CmpOp::Gt, "z")]);
        assert!(c.is_satisfiable());
    }

    #[test]
    fn sat_independent_attributes_do_not_interact() {
        let c = Conjunction::of(vec![Atom::eq(A, 1), Atom::eq(B, "x")]);
        assert!(c.is_satisfiable());
    }

    #[test]
    fn predicate_dnf_eval_and_combinators() {
        let title_mts = Predicate::atom(Atom::eq(B, "MTS"));
        let title_vp = Predicate::atom(Atom::eq(B, "VP"));
        let either = title_mts.clone().or(title_vp);
        assert!(either.eval(&t(vals![1, "MTS"])));
        assert!(either.eval(&t(vals![1, "VP"])));
        assert!(!either.eval(&t(vals![1, "DMTS"])));

        let cc44 = Predicate::atom(Atom::eq(A, 44));
        let both = either.and(&cc44);
        assert!(both.eval(&t(vals![44, "MTS"])));
        assert!(!both.eval(&t(vals![31, "MTS"])));
        assert_eq!(both.disjuncts().len(), 2);
    }

    #[test]
    fn predicate_sat_through_and() {
        // Fi: title = MTS ; Fφ: title = VP  →  unsat (partitioning condition).
        let fi = Predicate::atom(Atom::eq(B, "MTS"));
        let fphi = Predicate::atom(Atom::eq(B, "VP"));
        assert!(!fi.and(&fphi).is_satisfiable());
        // Compatible pattern stays satisfiable.
        let fphi2 = Predicate::atom(Atom::eq(A, 44));
        assert!(fi.and(&fphi2).is_satisfiable());
    }

    #[test]
    fn never_and_always() {
        let tup = t(vals![1, "x"]);
        assert!(Predicate::always().eval(&tup));
        assert!(!Predicate::never().eval(&tup));
        assert!(Predicate::always().is_satisfiable());
        assert!(!Predicate::never().is_satisfiable());
    }

    #[test]
    fn display_round_trip_strings() {
        let p = Predicate::from_conjunction(Conjunction::of(vec![
            Atom::eq(A, 44),
            Atom::new(B, CmpOp::Ne, "VP"),
        ]));
        let s = p.to_string();
        assert!(s.contains("#0 = 44"));
        assert!(s.contains("#1 != VP"));
    }
}
