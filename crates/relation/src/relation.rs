//! In-memory relations: a schema plus a bag of tuples.

use crate::delta::{DeltaEffect, RelationDelta};
use crate::error::RelationError;
use crate::fxhash::FxHashMap;
use crate::schema::{AttrId, Schema, ValueType};
use crate::store::{CodesView, Column, Dictionary};
use crate::tuple::{Tuple, TupleId};
use crate::value::Value;
use std::fmt;
use std::sync::Arc;

/// An instance `D` of a relation schema `R`.
///
/// Storage is dictionary-encoded and columnar: one [`Column`] of `u32`
/// codes per attribute, each backed by a shareable [`Dictionary`] (see
/// [`crate::store`]). The row vector of [`Tuple`]s is the *row view* kept
/// in sync with the columns, so the row API (`tuples`, `iter`, `get`,
/// `project`) keeps working unchanged while the hot operators
/// ([`crate::ops`], σ-partitioning, compiled pattern matching) read the
/// code columns directly. Rows appended with [`Relation::push`] store the
/// dictionaries' canonical `Arc<str>` payloads, so duplicate strings are
/// stored once; [`Relation::push_tuple`] keeps the given tuple's own
/// (cheaply `Arc`-cloned) values, which already share the canonical
/// payloads whenever the tuple came from a relation over the same
/// dictionaries — the fragment and shipment paths.
///
/// Tuples keep their [`TupleId`]s across fragmentation, projection and
/// shipment; pushing fresh rows assigns ids from an internal counter.
/// Relations are *bags* structurally, but detection semantics treat tuples
/// with equal ids as the same tuple.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Arc<Schema>,
    tuples: Vec<Tuple>,
    columns: Vec<Column>,
    next_tid: u64,
}

impl Relation {
    /// Creates an empty relation over `schema`, with fresh dictionaries.
    pub fn new(schema: Arc<Schema>) -> Self {
        let columns = (0..schema.arity()).map(|_| Column::new()).collect();
        Relation { schema, tuples: Vec::new(), columns, next_tid: 0 }
    }

    /// Creates an empty relation with room for `cap` tuples.
    pub fn with_capacity(schema: Arc<Schema>, cap: usize) -> Self {
        let columns = (0..schema.arity())
            .map(|_| Column::sharing_with_capacity(Arc::new(Dictionary::new()), cap))
            .collect();
        Relation { schema, tuples: Vec::with_capacity(cap), columns, next_tid: 0 }
    }

    /// Creates an empty relation whose columns share the given
    /// dictionaries (one per attribute, in schema order). This is the
    /// fragment constructor: fragments built over a parent relation's
    /// dictionaries keep their codes comparable with the parent and with
    /// each other, so nothing is re-encoded when tuples move between them.
    pub fn with_dictionaries(
        schema: Arc<Schema>,
        dicts: Vec<Arc<Dictionary>>,
        cap: usize,
    ) -> Result<Self, RelationError> {
        if dicts.len() != schema.arity() {
            return Err(RelationError::SchemaMismatch {
                detail: format!(
                    "{} dictionaries for arity-{} schema `{}`",
                    dicts.len(),
                    schema.arity(),
                    schema.name()
                ),
            });
        }
        let columns = dicts.into_iter().map(|d| Column::sharing_with_capacity(d, cap)).collect();
        Ok(Relation { schema, tuples: Vec::with_capacity(cap), columns, next_tid: 0 })
    }

    /// Creates an empty relation with this relation's schema *and*
    /// dictionaries — the natural start of a same-schema fragment,
    /// selection result, or reassembly target.
    pub fn empty_like(&self) -> Self {
        self.with_capacity_like(0)
    }

    /// [`Self::empty_like`] with room for `cap` tuples.
    pub fn with_capacity_like(&self, cap: usize) -> Self {
        let columns = self
            .columns
            .iter()
            .map(|c| Column::sharing_with_capacity(c.dict().clone(), cap))
            .collect();
        Relation {
            schema: self.schema.clone(),
            tuples: Vec::with_capacity(cap),
            columns,
            next_tid: 0,
        }
    }

    /// The schema of this relation.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Appends a fresh row, assigning it the next tuple id. Values are
    /// validated against the schema (arity and types; `Null` is allowed
    /// for any type).
    pub fn push(&mut self, values: Vec<Value>) -> Result<TupleId, RelationError> {
        self.validate(&values)?;
        let tid = TupleId(self.next_tid);
        self.next_tid += 1;
        // Encode every cell; the row view stores the dictionaries'
        // canonical values so duplicate payloads share one allocation.
        let canonical: Vec<Value> =
            values.iter().zip(&mut self.columns).map(|(v, col)| col.push(v)).collect();
        self.tuples.push(Tuple::new(tid, canonical));
        Ok(tid)
    }

    /// Appends an existing tuple *preserving its id* (used when building
    /// fragments of an already-identified relation, and when receiving
    /// shipped tuples). The internal id counter is advanced past it.
    /// The tuple's values are encoded but kept as-is in the row view
    /// (they are already canonical when the tuple came from a relation
    /// sharing these dictionaries; rebuilding them here would cost an
    /// allocation per tuple on the fragment hot path for nothing).
    pub fn push_tuple(&mut self, tuple: Tuple) -> Result<(), RelationError> {
        self.validate(tuple.values())?;
        self.next_tid = self.next_tid.max(tuple.tid.0 + 1);
        for (v, col) in tuple.values().iter().zip(&mut self.columns) {
            col.push(v);
        }
        self.tuples.push(tuple);
        Ok(())
    }

    /// Bulk [`Relation::push`]: appends `rows` in order, assigning
    /// sequential ids. All rows are validated before anything is
    /// appended, so an error leaves the relation unchanged. Interning
    /// runs through one memo per column ([`Column::push_cached`]), so
    /// each distinct value per column pays for one dictionary access
    /// per batch instead of one per row.
    pub fn extend_rows(&mut self, rows: Vec<Vec<Value>>) -> Result<(), RelationError> {
        for row in &rows {
            self.validate(row)?;
        }
        self.tuples.reserve(rows.len());
        for col in &mut self.columns {
            col.reserve(rows.len());
        }
        let mut memos: Vec<FxHashMap<Value, (u32, Value)>> =
            (0..self.columns.len()).map(|_| FxHashMap::default()).collect();
        for row in rows {
            let tid = TupleId(self.next_tid);
            self.next_tid += 1;
            let canonical: Vec<Value> = row
                .iter()
                .zip(&mut self.columns)
                .zip(&mut memos)
                .map(|((v, col), memo)| col.push_cached(v, memo))
                .collect();
            self.tuples.push(Tuple::new(tid, canonical));
        }
        Ok(())
    }

    /// Bulk [`Relation::push_tuple`]: appends pre-identified tuples in
    /// order through the same per-column memos as
    /// [`Relation::extend_rows`]. All tuples are validated before
    /// anything is appended; ids are preserved and the internal counter
    /// advances past the largest one seen. The fragment-construction
    /// and reassembly hot path.
    pub fn extend_tuples(&mut self, tuples: Vec<Tuple>) -> Result<(), RelationError> {
        for t in &tuples {
            self.validate(t.values())?;
        }
        self.tuples.reserve(tuples.len());
        for col in &mut self.columns {
            col.reserve(tuples.len());
        }
        let mut memos: Vec<FxHashMap<Value, (u32, Value)>> =
            (0..self.columns.len()).map(|_| FxHashMap::default()).collect();
        for t in tuples {
            self.next_tid = self.next_tid.max(t.tid.0 + 1);
            for ((v, col), memo) in t.values().iter().zip(&mut self.columns).zip(&mut memos) {
                // Keep the tuple's own (Arc-shared) values in the row
                // view, exactly like push_tuple; only the code matters.
                col.push_cached(v, memo);
            }
            self.tuples.push(t);
        }
        Ok(())
    }

    /// Applies one delta batch in place — deletes first (order
    /// preserved among survivors), then inserts, interning through one
    /// [`Column::push_cached`] memo per column exactly like
    /// [`Relation::extend_tuples`]. Returns the [`DeltaEffect`]: the
    /// full-width dictionary code rows of every affected tuple, which
    /// is both what the distributed delta protocol ships (4 bytes per
    /// cell) and what a violation index needs to stay current.
    ///
    /// Everything is validated before anything mutates: a delete id
    /// that is absent (or repeated within the delta), an insert that
    /// fails schema validation, or an insert whose id is already live
    /// (present and not deleted by this same delta) or repeated within
    /// the delta, returns an error and leaves the relation unchanged.
    /// The id checks matter beyond hygiene: a violation index keyed by
    /// tuple id silently corrupts if two live rows ever share one.
    pub fn apply_delta(&mut self, delta: &RelationDelta) -> Result<DeltaEffect, RelationError> {
        let mut insert_ids: crate::fxhash::FxHashSet<TupleId> = crate::fxhash::FxHashSet::default();
        for t in &delta.inserts {
            self.validate(t.values())?;
            if !insert_ids.insert(t.tid) {
                return Err(RelationError::DuplicateTuple { tid: t.tid.0 });
            }
        }
        let wanted: crate::fxhash::FxHashSet<TupleId> = delta.deletes.iter().copied().collect();
        if wanted.len() != delta.deletes.len() {
            let dup = delta
                .deletes
                .iter()
                .find(|tid| delta.deletes.iter().filter(|t| t == tid).count() > 1)
                .expect("a duplicate exists");
            return Err(RelationError::UnknownTuple { tid: dup.0 });
        }
        // One scan locates every delete and rejects inserts whose id is
        // already live (unless this very delta deletes it first).
        let mut pos: FxHashMap<TupleId, usize> =
            FxHashMap::with_capacity_and_hasher(delta.deletes.len(), Default::default());
        for (i, t) in self.tuples.iter().enumerate() {
            if wanted.contains(&t.tid) {
                pos.insert(t.tid, i);
            } else if insert_ids.contains(&t.tid) {
                return Err(RelationError::DuplicateTuple { tid: t.tid.0 });
            }
        }
        let mut effect = DeltaEffect::default();

        if !delta.deletes.is_empty() {
            for tid in &delta.deletes {
                let Some(&i) = pos.get(tid) else {
                    return Err(RelationError::UnknownTuple { tid: tid.0 });
                };
                let codes: Box<[u32]> = self.columns.iter().map(|c| c.codes().at(i)).collect();
                effect.deleted.push((*tid, codes));
            }
            let mut keep = vec![true; self.tuples.len()];
            // dcd-lint: allow(hash-iteration-order) — order cannot escape:
            // each iteration writes an independent `keep[i] = false`.
            for &i in pos.values() {
                keep[i] = false;
            }
            let mut i = 0;
            self.tuples.retain(|_| {
                let k = keep[i];
                i += 1;
                k
            });
            for col in &mut self.columns {
                col.retain_rows(&keep);
            }
        }

        if !delta.inserts.is_empty() {
            self.tuples.reserve(delta.inserts.len());
            let mut memos: Vec<FxHashMap<Value, (u32, Value)>> =
                (0..self.columns.len()).map(|_| FxHashMap::default()).collect();
            for t in &delta.inserts {
                self.next_tid = self.next_tid.max(t.tid.0 + 1);
                let mut codes = Vec::with_capacity(self.columns.len());
                for ((v, col), memo) in t.values().iter().zip(&mut self.columns).zip(&mut memos) {
                    col.push_cached(v, memo);
                    codes.push(col.last_code().expect("push appended a code"));
                }
                effect.inserted.push((t.tid, codes.into_boxed_slice()));
                self.tuples.push(t.clone());
            }
        }
        Ok(effect)
    }

    /// All tuples, in insertion order (the row view of the columnar
    /// store).
    pub fn tuples(&self) -> &[Tuple] {
        &self.tuples
    }

    /// All dictionary-encoded columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// The dictionary-encoded column of one attribute.
    #[inline]
    pub fn column(&self, attr: AttrId) -> &Column {
        &self.columns[attr.index()]
    }

    /// The dictionary of one attribute's column.
    #[inline]
    pub fn dictionary(&self, attr: AttrId) -> &Arc<Dictionary> {
        self.columns[attr.index()].dict()
    }

    /// The dictionaries of the given attributes, cloned `Arc`s in the
    /// given order (what fragment constructors pass to
    /// [`Relation::with_dictionaries`]).
    pub fn dictionaries_of(&self, attrs: &[AttrId]) -> Vec<Arc<Dictionary>> {
        attrs.iter().map(|&a| self.columns[a.index()].dict().clone()).collect()
    }

    /// The code views of the given attributes, in order — the inputs of
    /// every code-keyed hot loop (group-by, σ-partitioning, join keys).
    /// The views share one chunk layout (all columns of a relation are
    /// built with the same chunk size), so scans zip their chunks with
    /// [`crate::store::zip_chunks`] and read dense `&[u32]` slices.
    pub fn code_views(&self, attrs: &[AttrId]) -> Vec<CodesView<'_>> {
        attrs.iter().map(|&a| self.columns[a.index()].codes()).collect()
    }

    /// The chunk size this relation's columns were built with.
    pub fn chunk_rows(&self) -> usize {
        self.columns.first().map_or_else(crate::store::chunk_rows, Column::chunk_rows)
    }

    /// Number of storage chunks per column (0 when empty) — the morsel
    /// count of this relation for chunk-granular scheduling.
    pub fn n_chunks(&self) -> usize {
        self.tuples.len().div_ceil(self.chunk_rows())
    }

    /// Decodes a code vector produced over `attrs` back into values
    /// (e.g. a group key) — one dictionary read per attribute, not per
    /// tuple.
    pub fn decode_projection(&self, attrs: &[AttrId], codes: &[u32]) -> Vec<Value> {
        attrs
            .iter()
            .zip(codes)
            .map(|(&a, &code)| self.columns[a.index()].dict().value(code))
            .collect()
    }

    /// The `(tid, codes)` wire rows of the given tuple indices,
    /// projected onto `attrs` (in the given order) — what a site
    /// serializes when shipping a σ-block to a coordinator over the
    /// code-native wire. One `u32` per cell; decoding happens only at
    /// the receiver, and only for violating group keys.
    pub fn code_rows(&self, attrs: &[AttrId], rows: &[usize]) -> Vec<(TupleId, Box<[u32]>)> {
        let cols: Vec<CodesView<'_>> = self.code_views(attrs);
        rows.iter().map(|&i| (self.tuples[i].tid, cols.iter().map(|c| c.at(i)).collect())).collect()
    }

    /// Appends a row given as dictionary codes (one per attribute, in
    /// schema order), preserving `tid` — the receiving end of the
    /// code-shipped wire. The codes must come from this relation's own
    /// dictionaries (fragments built through the `dcd-dist`
    /// constructors share them, which is what makes codes
    /// site-portable); the row view is rebuilt by dictionary decode —
    /// `Arc`-cloned canonical values, no re-interning.
    ///
    /// Panics if any code was never assigned by the corresponding
    /// dictionary.
    pub fn push_code_row(&mut self, tid: TupleId, codes: &[u32]) -> Result<(), RelationError> {
        if codes.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: codes.len(),
            });
        }
        self.next_tid = self.next_tid.max(tid.0 + 1);
        let values: Vec<Value> =
            codes.iter().zip(&mut self.columns).map(|(&c, col)| col.push_code(c)).collect();
        self.tuples.push(Tuple::new(tid, values));
        Ok(())
    }

    /// Iterates over the tuples.
    pub fn iter(&self) -> std::slice::Iter<'_, Tuple> {
        self.tuples.iter()
    }

    /// Looks up a tuple by id with a linear scan (test/debug helper; the
    /// hot paths never need id lookup).
    pub fn find(&self, tid: TupleId) -> Option<&Tuple> {
        self.tuples.iter().find(|t| t.tid == tid)
    }

    /// Builds a relation from pre-identified tuples (fragment
    /// construction / reassembly), via the bulk
    /// [`Relation::extend_tuples`] path.
    pub fn from_tuples(schema: Arc<Schema>, tuples: Vec<Tuple>) -> Result<Self, RelationError> {
        let mut rel = Relation::with_capacity(schema, tuples.len());
        rel.extend_tuples(tuples)?;
        Ok(rel)
    }

    /// Builds a relation from literal rows, assigning fresh ids in
    /// order, via the bulk [`Relation::extend_rows`] path.
    pub fn from_rows(schema: Arc<Schema>, rows: Vec<Vec<Value>>) -> Result<Self, RelationError> {
        let mut rel = Relation::with_capacity(schema, rows.len());
        rel.extend_rows(rows)?;
        Ok(rel)
    }

    /// Total approximate wire size of all tuples (network accounting).
    pub fn wire_size(&self) -> usize {
        self.tuples.iter().map(Tuple::wire_size).sum()
    }

    fn validate(&self, values: &[Value]) -> Result<(), RelationError> {
        if values.len() != self.schema.arity() {
            return Err(RelationError::ArityMismatch {
                expected: self.schema.arity(),
                got: values.len(),
            });
        }
        for (i, v) in values.iter().enumerate() {
            let attr = self.schema.attr(AttrId(i as u16));
            let ok = matches!(
                (attr.ty, v),
                (_, Value::Null)
                    | (ValueType::Int, Value::Int(_))
                    | (ValueType::Str, Value::Str(_))
            );
            if !ok {
                return Err(RelationError::TypeMismatch {
                    attr: attr.name.clone(),
                    expected: attr.ty.name(),
                    got: format!("{v:?}"),
                });
            }
        }
        Ok(())
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} tuples]", self.schema, self.tuples.len())?;
        for t in self.tuples.iter().take(20) {
            writeln!(f, "  {t}")?;
        }
        if self.tuples.len() > 20 {
            writeln!(f, "  … {} more", self.tuples.len() - 20)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vals;

    fn schema() -> Arc<Schema> {
        Schema::builder("r").attr("a", ValueType::Int).attr("b", ValueType::Str).build().unwrap()
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut r = Relation::new(schema());
        assert_eq!(r.push(vals![1, "x"]).unwrap(), TupleId(0));
        assert_eq!(r.push(vals![2, "y"]).unwrap(), TupleId(1));
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
    }

    #[test]
    fn arity_validation() {
        let mut r = Relation::new(schema());
        let err = r.push(vals![1]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { expected: 2, got: 1 }));
    }

    #[test]
    fn type_validation_allows_null() {
        let mut r = Relation::new(schema());
        r.push(vals![Value::Null, Value::Null]).unwrap();
        let err = r.push(vals!["oops", "x"]).unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
    }

    #[test]
    fn push_tuple_preserves_and_advances_ids() {
        let mut r = Relation::new(schema());
        r.push_tuple(Tuple::new(TupleId(10), vals![1, "x"])).unwrap();
        // Fresh pushes continue after the max seen id.
        assert_eq!(r.push(vals![2, "y"]).unwrap(), TupleId(11));
        assert!(r.find(TupleId(10)).is_some());
        assert!(r.find(TupleId(99)).is_none());
    }

    #[test]
    fn from_rows_and_from_tuples() {
        let r = Relation::from_rows(schema(), vec![vals![1, "a"], vals![2, "b"]]).unwrap();
        assert_eq!(r.len(), 2);
        let r2 = Relation::from_tuples(schema(), r.tuples().to_vec()).unwrap();
        assert_eq!(r2.len(), 2);
        assert_eq!(r2.tuples()[0].tid, TupleId(0));
    }

    #[test]
    fn extend_rows_matches_cell_by_cell_push() {
        let rows: Vec<Vec<Value>> = (0..30).map(|i| vals![i % 3, format!("s{}", i % 4)]).collect();
        let mut pushed = Relation::new(schema());
        for row in rows.clone() {
            pushed.push(row).unwrap();
        }
        let mut bulk = Relation::new(schema());
        bulk.extend_rows(rows).unwrap();
        assert_eq!(bulk.tuples(), pushed.tuples());
        for (a, b) in bulk.columns().iter().zip(pushed.columns()) {
            assert_eq!(a.codes(), b.codes());
            assert_eq!(a.dict().snapshot(), b.dict().snapshot());
        }
        // Fresh pushes continue after the batch.
        assert_eq!(bulk.push(vals![9, "z"]).unwrap(), TupleId(30));
    }

    #[test]
    fn extend_rows_validates_everything_before_appending() {
        let mut r = Relation::new(schema());
        r.push(vals![1, "x"]).unwrap();
        let err = r.extend_rows(vec![vals![2, "y"], vals![3]]).unwrap_err();
        assert!(matches!(err, RelationError::ArityMismatch { .. }));
        assert_eq!(r.len(), 1, "a failing batch must leave the relation unchanged");
        assert_eq!(r.columns()[0].len(), 1);
    }

    #[test]
    fn extend_tuples_preserves_ids_and_advances_counter() {
        let mut r = Relation::new(schema());
        r.extend_tuples(vec![
            Tuple::new(TupleId(5), vals![1, "x"]),
            Tuple::new(TupleId(2), vals![1, "y"]),
        ])
        .unwrap();
        assert_eq!(r.push(vals![2, "z"]).unwrap(), TupleId(6));
        assert!(r.find(TupleId(5)).is_some());
        assert_eq!(r.columns()[0].codes(), &[0, 0, 1]);
    }

    #[test]
    fn apply_delta_deletes_then_inserts_and_reports_codes() {
        let mut r =
            Relation::from_rows(schema(), vec![vals![1, "x"], vals![2, "y"], vals![3, "x"]])
                .unwrap();
        let delta = crate::RelationDelta::new(
            vec![Tuple::new(TupleId(10), vals![2, "z"])],
            vec![TupleId(1)],
        );
        let effect = r.apply_delta(&delta).unwrap();
        // Deleted row 1 carried codes (1, 1); the insert re-uses code 1
        // for value 2 and interns "z" fresh.
        assert_eq!(effect.deleted, vec![(TupleId(1), vec![1, 1].into())]);
        assert_eq!(effect.inserted, vec![(TupleId(10), vec![1, 2].into())]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.columns()[0].codes(), &[0, 2, 1]);
        assert_eq!(r.columns()[1].codes(), &[0, 0, 2]);
        // Survivor order is preserved; the id counter advanced.
        assert_eq!(r.tuples()[0].tid, TupleId(0));
        assert_eq!(r.tuples()[1].tid, TupleId(2));
        assert_eq!(r.push(vals![9, "w"]).unwrap(), TupleId(11));
    }

    #[test]
    fn apply_delta_is_all_or_nothing() {
        let mut r = Relation::from_rows(schema(), vec![vals![1, "x"], vals![2, "y"]]).unwrap();
        let snapshot = r.tuples().to_vec();
        // Unknown delete id.
        let err = r.apply_delta(&crate::RelationDelta::new(vec![], vec![TupleId(99)])).unwrap_err();
        assert!(matches!(err, RelationError::UnknownTuple { tid: 99 }));
        // Duplicated delete id.
        let err = r
            .apply_delta(&crate::RelationDelta::new(vec![], vec![TupleId(0), TupleId(0)]))
            .unwrap_err();
        assert!(matches!(err, RelationError::UnknownTuple { tid: 0 }));
        // Ill-typed insert, alongside a valid delete that must not run.
        let err = r
            .apply_delta(&crate::RelationDelta::new(
                vec![Tuple::new(TupleId(5), vals!["oops", "x"])],
                vec![TupleId(0)],
            ))
            .unwrap_err();
        assert!(matches!(err, RelationError::TypeMismatch { .. }));
        assert_eq!(r.tuples(), &snapshot[..], "failed deltas must not mutate");
        assert_eq!(r.columns()[0].len(), 2);
    }

    #[test]
    fn apply_delta_rejects_duplicate_insert_ids() {
        let mut r = Relation::from_rows(schema(), vec![vals![1, "x"], vals![2, "y"]]).unwrap();
        let snapshot = r.tuples().to_vec();
        // Inserting an id that is already live fails.
        let err = r
            .apply_delta(&crate::RelationDelta::new(
                vec![Tuple::new(TupleId(1), vals![9, "z"])],
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateTuple { tid: 1 }));
        // The same id twice within one delta fails.
        let err = r
            .apply_delta(&crate::RelationDelta::new(
                vec![Tuple::new(TupleId(5), vals![8, "a"]), Tuple::new(TupleId(5), vals![9, "b"])],
                vec![],
            ))
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateTuple { tid: 5 }));
        assert_eq!(r.tuples(), &snapshot[..], "failed deltas must not mutate");
        // Delete-then-reinsert of one id within a single delta is fine
        // (deletes apply first).
        r.apply_delta(&crate::RelationDelta::new(
            vec![Tuple::new(TupleId(0), vals![7, "w"])],
            vec![TupleId(0)],
        ))
        .unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.find(TupleId(0)).unwrap().get(AttrId(0)), &Value::Int(7));
    }

    #[test]
    fn apply_delta_matches_manual_rebuild() {
        let mut live = Relation::from_rows(
            schema(),
            (0..20).map(|i| vals![i % 5, format!("s{}", i % 3)]).collect(),
        )
        .unwrap();
        let delta = crate::RelationDelta::new(
            (0..4).map(|i| Tuple::new(TupleId(100 + i), vals![7, format!("n{i}")])).collect(),
            vec![TupleId(3), TupleId(11), TupleId(19)],
        );
        live.apply_delta(&delta).unwrap();
        // A from-scratch rebuild of the same final row multiset agrees
        // tuple for tuple (ids and values).
        let survivors: Vec<Tuple> = live.tuples().to_vec();
        let rebuilt = Relation::from_tuples(schema(), survivors.clone()).unwrap();
        assert_eq!(rebuilt.tuples(), &survivors[..]);
        assert_eq!(live.len(), 21);
    }

    #[test]
    fn code_rows_and_push_code_row_round_trip() {
        let parent =
            Relation::from_rows(schema(), vec![vals![1, "x"], vals![2, "y"], vals![1, "y"]])
                .unwrap();
        let rows = parent.code_rows(&[AttrId(0), AttrId(1)], &[0, 2]);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, TupleId(0));
        assert_eq!(rows[1].0, TupleId(2));
        // A receiver sharing the dictionaries rebuilds identical rows
        // from codes alone.
        let mut recv = parent.empty_like();
        for (tid, codes) in &rows {
            recv.push_code_row(*tid, codes).unwrap();
        }
        assert_eq!(recv.tuples()[0], parent.tuples()[0]);
        assert_eq!(recv.tuples()[1], parent.tuples()[2]);
        assert_eq!(recv.columns()[0].codes(), &[0, 0]);
        // The id counter advanced past the received ids.
        assert_eq!(recv.push(vals![5, "q"]).unwrap(), TupleId(3));
        // Arity is validated.
        assert!(recv.push_code_row(TupleId(9), &[0]).is_err());
    }

    #[test]
    fn display_truncates() {
        let mut r = Relation::new(schema());
        for i in 0..25 {
            r.push(vals![i, "v"]).unwrap();
        }
        let s = r.to_string();
        assert!(s.contains("25 tuples"));
        assert!(s.contains("… 5 more"));
    }
}
