//! Relation schemas: named, typed attributes plus key metadata.

use crate::error::RelationError;
use crate::fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Index of an attribute inside its schema (`attr(R)` position).
///
/// A `u16` is plenty: the paper's widest schema (the Theorem 4 reduction)
/// has `m² + m + 1` attributes for small `m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct AttrId(pub u16);

impl AttrId {
    /// The position as a usize, for indexing into tuple value slices.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Declared type of an attribute's domain `dom(A)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueType {
    /// 64-bit integers.
    Int,
    /// UTF-8 strings.
    Str,
}

impl ValueType {
    /// Human-readable type name.
    pub const fn name(self) -> &'static str {
        match self {
            ValueType::Int => "Int",
            ValueType::Str => "Str",
        }
    }
}

/// A single attribute: a name and the type of its domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Attribute {
    /// Attribute name, unique within a schema.
    pub name: String,
    /// Declared domain type.
    pub ty: ValueType,
}

/// A relation schema `R` over a set of attributes `attr(R)`, with an
/// optional key `key(R)`.
///
/// Schemas are immutable once built and shared via `Arc`, so fragments of
/// the same relation (which all carry the same schema in the horizontal
/// case, §II-B) share one allocation.
#[derive(Debug, Clone, Serialize)]
pub struct Schema {
    name: String,
    attrs: Vec<Attribute>,
    key: Vec<AttrId>,
    #[serde(skip)]
    by_name: FxHashMap<String, AttrId>,
}

impl PartialEq for Schema {
    fn eq(&self, other: &Self) -> bool {
        // `by_name` is derived from `attrs`, so comparing it is redundant.
        self.name == other.name && self.attrs == other.attrs && self.key == other.key
    }
}

impl Eq for Schema {}

impl Schema {
    /// Starts building a schema for relation `name`.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder { name: name.into(), attrs: Vec::new(), key: Vec::new() }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All attributes, in declaration order.
    pub fn attrs(&self) -> &[Attribute] {
        &self.attrs
    }

    /// Number of attributes (the relation's arity).
    pub fn arity(&self) -> usize {
        self.attrs.len()
    }

    /// The declared key attributes `key(R)` (may be empty).
    pub fn key(&self) -> &[AttrId] {
        &self.key
    }

    /// Looks up an attribute id by name.
    pub fn attr_id(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Looks up an attribute id by name, erroring if absent.
    pub fn require(&self, name: &str) -> Result<AttrId, RelationError> {
        self.attr_id(name).ok_or_else(|| RelationError::UnknownAttribute {
            name: name.to_string(),
            schema: self.name.clone(),
        })
    }

    /// Resolves a list of attribute names to ids, erroring on the first
    /// unknown name.
    pub fn require_all(&self, names: &[&str]) -> Result<Vec<AttrId>, RelationError> {
        names.iter().map(|n| self.require(n)).collect()
    }

    /// The attribute at `id`. Panics if `id` is out of range (ids should
    /// only ever come from this schema).
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// Name of the attribute at `id`.
    pub fn attr_name(&self, id: AttrId) -> &str {
        &self.attrs[id.index()].name
    }

    /// All attribute ids, in declaration order.
    pub fn attr_ids(&self) -> impl Iterator<Item = AttrId> + '_ {
        (0..self.attrs.len()).map(|i| AttrId(i as u16))
    }

    /// Builds a derived schema containing only `keep` (in the given
    /// order), named `name`. The key is retained iff all key attributes
    /// are kept. Used for vertical fragmentation and projections.
    pub fn project(
        &self,
        name: impl Into<String>,
        keep: &[AttrId],
    ) -> Result<Arc<Schema>, RelationError> {
        let mut b = Schema::builder(name);
        for &id in keep {
            if id.index() >= self.attrs.len() {
                return Err(RelationError::UnknownAttribute {
                    name: format!("{id}"),
                    schema: self.name.clone(),
                });
            }
            let a = self.attr(id);
            b = b.attr(&a.name, a.ty);
        }
        let key_names: Vec<&str> =
            self.key.iter().filter(|k| keep.contains(k)).map(|&k| self.attr_name(k)).collect();
        if key_names.len() == self.key.len() && !key_names.is_empty() {
            b = b.key(&key_names);
        }
        b.build()
    }

    fn from_parts(name: String, attrs: Vec<Attribute>, key: Vec<AttrId>) -> Self {
        let by_name =
            attrs.iter().enumerate().map(|(i, a)| (a.name.clone(), AttrId(i as u16))).collect();
        Schema { name, attrs, key, by_name }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.name)?;
        for (i, a) in self.attrs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}: {}", a.name, a.ty.name())?;
        }
        write!(f, ")")
    }
}

/// Incremental builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    attrs: Vec<Attribute>,
    key: Vec<String>,
}

impl SchemaBuilder {
    /// Appends an attribute.
    pub fn attr(mut self, name: impl Into<String>, ty: ValueType) -> Self {
        self.attrs.push(Attribute { name: name.into(), ty });
        self
    }

    /// Appends several attributes of the same type.
    pub fn attrs(mut self, names: &[&str], ty: ValueType) -> Self {
        for n in names {
            self.attrs.push(Attribute { name: (*n).to_string(), ty });
        }
        self
    }

    /// Declares the key attributes by name (replacing any previous key).
    pub fn key(mut self, names: &[&str]) -> Self {
        self.key = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Validates and builds the schema, wrapped in an `Arc` since schemas
    /// are shared by relations, fragments and shipped tuple batches.
    pub fn build(self) -> Result<Arc<Schema>, RelationError> {
        let mut seen = crate::fxhash::FxHashSet::default();
        for a in &self.attrs {
            if !seen.insert(a.name.as_str()) {
                return Err(RelationError::DuplicateAttribute { name: a.name.clone() });
            }
        }
        let mut key_ids = Vec::with_capacity(self.key.len());
        for k in &self.key {
            match self.attrs.iter().position(|a| &a.name == k) {
                Some(i) => key_ids.push(AttrId(i as u16)),
                None => {
                    return Err(RelationError::InvalidKey {
                        detail: format!("key attribute `{k}` is not declared in the schema"),
                    })
                }
            }
        }
        Ok(Arc::new(Schema::from_parts(self.name, self.attrs, key_ids)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp() -> Arc<Schema> {
        Schema::builder("emp")
            .attr("id", ValueType::Int)
            .attr("name", ValueType::Str)
            .attr("cc", ValueType::Int)
            .key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn lookup_by_name() {
        let s = emp();
        assert_eq!(s.attr_id("id"), Some(AttrId(0)));
        assert_eq!(s.attr_id("cc"), Some(AttrId(2)));
        assert_eq!(s.attr_id("nope"), None);
        assert!(s.require("nope").is_err());
        assert_eq!(s.require_all(&["cc", "name"]).unwrap(), vec![AttrId(2), AttrId(1)]);
    }

    #[test]
    fn key_resolution() {
        let s = emp();
        assert_eq!(s.key(), &[AttrId(0)]);
    }

    #[test]
    fn duplicate_attribute_rejected() {
        let err = Schema::builder("r")
            .attr("a", ValueType::Int)
            .attr("a", ValueType::Str)
            .build()
            .unwrap_err();
        assert!(matches!(err, RelationError::DuplicateAttribute { .. }));
    }

    #[test]
    fn unknown_key_rejected() {
        let err = Schema::builder("r").attr("a", ValueType::Int).key(&["b"]).build().unwrap_err();
        assert!(matches!(err, RelationError::InvalidKey { .. }));
    }

    #[test]
    fn projection_keeps_key_iff_complete() {
        let s = emp();
        // Keep id + cc: key survives.
        let p = s.project("emp_v", &[AttrId(0), AttrId(2)]).unwrap();
        assert_eq!(p.arity(), 2);
        assert_eq!(p.key().len(), 1);
        assert_eq!(p.attr_name(p.key()[0]), "id");
        // Drop the key attribute: no key on the projection.
        let p = s.project("emp_nok", &[AttrId(1), AttrId(2)]).unwrap();
        assert!(p.key().is_empty());
    }

    #[test]
    fn display_formats_schema() {
        let s = emp();
        assert_eq!(s.to_string(), "emp(id: Int, name: Str, cc: Int)");
    }

    #[test]
    fn attrs_bulk_builder() {
        let s = Schema::builder("r").attrs(&["a", "b", "c"], ValueType::Str).build().unwrap();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.attr(AttrId(1)).ty, ValueType::Str);
    }
}
