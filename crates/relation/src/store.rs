//! Dictionary-encoded columnar storage, chunked for morsel-driven scans.
//!
//! Every [`Relation`](crate::Relation) keeps, alongside its row vector, one
//! [`Column`] per attribute: a dense array of `u32` *codes*, each code
//! naming a distinct [`Value`] in the column's [`Dictionary`]. The hot
//! detection loops (GROUP BY on `t[X]`, σ-partitioning, pattern matching,
//! join keys) then run on integer codes instead of hashing and comparing
//! owned values:
//!
//! * two cells of one column are equal iff their codes are equal — the
//!   dictionary is a bijection between codes and distinct values;
//! * a pattern constant compiles to *one* dictionary lookup per relation
//!   (see `dcd_cfd::CompiledPattern`), after which the match operator `≍`
//!   is a `u32` compare;
//! * a group key over `k` attributes is a `[u32; k]` (packed into a single
//!   `u64` when `k ≤ 2`), so the group-by hash touches no string payloads.
//!
//! Dictionaries are shared across fragments of one relation (`Arc`): a
//! fragment constructor re-encodes nothing, and codes remain comparable
//! between the parent and every fragment. Interning is append-only behind
//! an `RwLock`; the per-tuple hot paths never take the lock — they read
//! dense code chunks and only touch the dictionary to decode one value per
//! *group* (or per pattern constant), not per tuple.
//!
//! # Chunked layout
//!
//! A column's codes are stored as a sequence of fixed-size dense chunks
//! ([`chunk_rows`] codes each; only the last chunk may be shorter). The
//! chunk is the execution layer's *morsel*: `dcd_dist::pool` schedules
//! `(site, chunk)` units onto its persistent workers, so a skewed
//! partition still parallelizes inside its one big fragment. Scans use
//! [`CodesView::chunks`] (plain `&[u32]` slices, no per-row division);
//! random access goes through [`CodesView::at`]. The chunk size comes
//! from `DCD_CHUNK_ROWS` (default [`DEFAULT_CHUNK_ROWS`]) and is captured
//! per column at construction, so every column of one relation shares one
//! chunk layout and multi-column scans zip aligned chunks.

use crate::fxhash::FxHashMap;
use crate::value::Value;
use std::fmt;
use std::ops::Index;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Sentinel code meaning "matches any value" in compiled pattern cells.
/// Never assigned to a real value.
pub const WILDCARD_CODE: u32 = u32::MAX;

/// Sentinel code meaning "this value is not in the dictionary" (e.g. a
/// pattern constant that no tuple carries, or a join key with no partner).
/// Never assigned to a real value, and never equal to any stored code.
pub const NO_CODE: u32 = u32::MAX - 1;

/// Codes at or above this bound are reserved for the sentinels above.
const CODE_LIMIT: u32 = u32::MAX - 2;

/// Rows per column chunk when neither the `DCD_CHUNK_ROWS` environment
/// variable nor [`set_chunk_rows`] overrides it: 64Ki codes (256 KiB per
/// chunk) — large enough that per-chunk bookkeeping is noise, small
/// enough that one fragment yields many morsels.
pub const DEFAULT_CHUNK_ROWS: usize = 64 * 1024;

/// Process-wide programmatic override; 0 means "not set". Tests and
/// benches that compare chunk layouts within one process use
/// [`set_chunk_rows`] instead of re-exec'ing with a different
/// environment.
static CHUNK_ROWS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

fn env_chunk_rows() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("DCD_CHUNK_ROWS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or(DEFAULT_CHUNK_ROWS)
    })
}

/// The chunk size (rows per chunk) new columns are built with:
/// [`set_chunk_rows`] override if present, else `DCD_CHUNK_ROWS` from the
/// environment (read once), else [`DEFAULT_CHUNK_ROWS`]. Any size ≥ 1 is
/// valid, including non-powers-of-two; CI runs the whole suite at 257 to
/// exercise misaligned chunk seams.
pub fn chunk_rows() -> usize {
    // Atomics audit: SeqCst load/store on a cold configuration knob —
    // ordering strength is irrelevant here (the value is read once per
    // column construction, never on a per-row path) so the strongest
    // ordering documents that no performance case was being made.
    match CHUNK_ROWS_OVERRIDE.load(Ordering::SeqCst) {
        0 => env_chunk_rows(),
        n => n,
    }
}

/// Overrides (or with `None` restores) the process-wide chunk size used
/// by columns constructed *after* the call. Existing columns keep the
/// layout they were built with — chunk size is captured per column, so
/// relations built under different settings coexist safely.
pub fn set_chunk_rows(rows: Option<usize>) {
    let v = match rows {
        Some(n) => {
            assert!(n >= 1, "chunk size must be at least one row");
            n
        }
        None => 0,
    };
    CHUNK_ROWS_OVERRIDE.store(v, Ordering::SeqCst);
}

#[derive(Debug, Default)]
struct DictInner {
    /// `values[code]` is the canonical value for `code`.
    values: Vec<Value>,
    /// Inverse map, value → code.
    codes: FxHashMap<Value, u32>,
}

/// An append-only interning dictionary for one attribute: each distinct
/// [`Value`] maps to a dense `u32` code in first-seen order.
///
/// Shared via `Arc` between a relation and all of its fragments, so codes
/// are comparable across them. All methods take `&self`; interning is
/// synchronized internally.
#[derive(Debug, Default)]
pub struct Dictionary {
    inner: RwLock<DictInner>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("dictionary lock poisoned").values.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `v`, returning its code and the canonical stored value
    /// (so callers can share the canonical `Arc<str>` payload instead of
    /// keeping their own copy).
    pub fn intern(&self, v: &Value) -> (u32, Value) {
        if let Some(hit) = self.lookup(v) {
            return hit;
        }
        let mut inner = self.inner.write().expect("dictionary lock poisoned");
        // Re-check: another writer may have interned between the locks.
        if let Some(&code) = inner.codes.get(v) {
            return (code, inner.values[code as usize].clone());
        }
        let code = inner.values.len() as u32;
        assert!(code < CODE_LIMIT, "dictionary exhausted the u32 code space");
        inner.values.push(v.clone());
        inner.codes.insert(v.clone(), code);
        (code, v.clone())
    }

    fn lookup(&self, v: &Value) -> Option<(u32, Value)> {
        let inner = self.inner.read().expect("dictionary lock poisoned");
        inner.codes.get(v).map(|&code| (code, inner.values[code as usize].clone()))
    }

    /// The code of `v`, if it has been interned ([`NO_CODE`]-free lookup
    /// used when compiling pattern constants and translating join keys).
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        self.inner.read().expect("dictionary lock poisoned").codes.get(v).copied()
    }

    /// The canonical value of `code` (O(1) clone — see [`Value`]).
    ///
    /// Panics if `code` was never assigned (codes must come from this
    /// dictionary or a relation sharing it).
    pub fn value(&self, code: u32) -> Value {
        self.inner.read().expect("dictionary lock poisoned").values[code as usize].clone()
    }

    /// Maps every current code to its rank under the [`Value`] total
    /// order: `rank[code_of(v)] < rank[code_of(w)]` iff `v < w`. Sorting
    /// rows by rank keys is therefore identical to sorting by values,
    /// while comparing only integers.
    pub fn rank_map(&self) -> Vec<u32> {
        let inner = self.inner.read().expect("dictionary lock poisoned");
        let mut order: Vec<u32> = (0..inner.values.len() as u32).collect();
        order.sort_by(|&a, &b| inner.values[a as usize].cmp(&inner.values[b as usize]));
        let mut rank = vec![0u32; order.len()];
        for (r, &code) in order.iter().enumerate() {
            rank[code as usize] = r as u32;
        }
        rank
    }

    /// A point-in-time copy of the code → value table (test/debug helper).
    pub fn snapshot(&self) -> Vec<Value> {
        self.inner.read().expect("dictionary lock poisoned").values.clone()
    }
}

impl Clone for Dictionary {
    /// Deep copy: the clone interns independently from the original.
    /// (Fragments that must share codes clone the `Arc`, not the
    /// dictionary.)
    fn clone(&self) -> Self {
        let inner = self.inner.read().expect("dictionary lock poisoned");
        Dictionary {
            inner: RwLock::new(DictInner {
                values: inner.values.clone(),
                codes: inner.codes.clone(),
            }),
        }
    }
}

/// One dictionary-encoded column of a relation: a shared [`Dictionary`]
/// plus a dense array of codes, one per row in insertion order, stored
/// as fixed-size chunks (see the module docs).
///
/// Invariant: every chunk holds exactly `chunk_rows` codes except the
/// last, which holds `1..=chunk_rows`.
#[derive(Debug, Clone)]
pub struct Column {
    dict: Arc<Dictionary>,
    chunks: Vec<Vec<u32>>,
    len: usize,
    chunk_rows: usize,
}

impl Column {
    /// Creates an empty column over a fresh dictionary.
    pub fn new() -> Self {
        Column::sharing(Arc::new(Dictionary::new()))
    }

    /// Creates an empty column sharing `dict` (fragment construction:
    /// codes stay comparable with every other column over `dict`).
    pub fn sharing(dict: Arc<Dictionary>) -> Self {
        Column { dict, chunks: Vec::new(), len: 0, chunk_rows: chunk_rows() }
    }

    /// Creates an empty column sharing `dict`, with room for `cap` rows.
    pub fn sharing_with_capacity(dict: Arc<Dictionary>, cap: usize) -> Self {
        let mut c = Column::sharing(dict);
        c.reserve(cap);
        c
    }

    /// The column's dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// A read view of the code array, one entry per row (chunk-aware:
    /// see [`CodesView`]).
    #[inline]
    pub fn codes(&self) -> CodesView<'_> {
        CodesView { chunks: &self.chunks, len: self.len, chunk_rows: self.chunk_rows }
    }

    /// The chunk size this column was built with.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn push_raw(&mut self, code: u32) {
        if self.len == self.chunks.len() * self.chunk_rows {
            self.chunks.push(Vec::with_capacity(self.chunk_rows.min(4096)));
        }
        self.chunks.last_mut().expect("chunk just ensured").push(code);
        self.len += 1;
    }

    /// Appends a value, interning it; returns the canonical value so the
    /// caller's row store can share the dictionary's allocation.
    pub fn push(&mut self, v: &Value) -> Value {
        let (code, canonical) = self.dict.intern(v);
        self.push_raw(code);
        canonical
    }

    /// [`Column::push`] through a run-local memo: a value already in
    /// `memo` never touches the dictionary (and its lock) again. Bulk
    /// ingest keeps one memo per column per batch, so each *distinct*
    /// value costs one dictionary access per batch instead of one per
    /// row — on low-cardinality columns the lock all but disappears.
    pub fn push_cached(&mut self, v: &Value, memo: &mut FxHashMap<Value, (u32, Value)>) -> Value {
        if let Some((code, canonical)) = memo.get(v) {
            let code = *code;
            let canonical = canonical.clone();
            self.push_raw(code);
            return canonical;
        }
        let (code, canonical) = self.dict.intern(v);
        self.push_raw(code);
        memo.insert(canonical.clone(), (code, canonical.clone()));
        canonical
    }

    /// Appends an *already interned* code (the receiving end of the
    /// code-shipped wire: the sender's codes are valid here because the
    /// two columns share one dictionary). Returns the decoded canonical
    /// value for the caller's row view — a dictionary array read, no
    /// hashing or re-interning.
    ///
    /// Panics if `code` was never assigned by this column's dictionary.
    pub fn push_code(&mut self, code: u32) -> Value {
        let canonical = self.dict.value(code);
        self.push_raw(code);
        canonical
    }

    /// The code of the most recently appended row, if any.
    pub fn last_code(&self) -> Option<u32> {
        self.chunks.last().and_then(|c| c.last().copied())
    }

    /// Reserves room for `extra` more rows (bounded by the chunk size:
    /// chunks past the current one are allocated as they fill).
    pub fn reserve(&mut self, extra: usize) {
        if extra == 0 {
            return;
        }
        let tail_room = self.chunks.len() * self.chunk_rows - self.len;
        if extra > tail_room {
            let want = (self.chunk_rows - self.len % self.chunk_rows).min(extra);
            if self.len == self.chunks.len() * self.chunk_rows {
                self.chunks.push(Vec::with_capacity(want.min(self.chunk_rows)));
            } else if let Some(last) = self.chunks.last_mut() {
                last.reserve(want.saturating_sub(last.capacity() - last.len()));
            }
        }
    }

    /// Drops every row whose `keep` flag is false, preserving the order
    /// of the kept rows (`keep.len()` must equal the column length).
    /// The delta-maintenance hook: dictionaries are append-only, so a
    /// removed row's code simply stops being referenced — codes are
    /// never recycled and stay decodable. The survivors are re-packed
    /// into dense chunks, so the chunk invariant holds afterwards.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.len);
        let old = std::mem::take(&mut self.chunks);
        self.len = 0;
        let mut row = 0;
        for chunk in old {
            for code in chunk {
                if keep[row] {
                    self.push_raw(code);
                }
                row += 1;
            }
        }
    }

    /// Decodes the value at `row`.
    pub fn decode(&self, row: usize) -> Value {
        self.dict.value(self.codes().at(row))
    }
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Column[{} rows, {} distinct]", self.len, self.dict.len())
    }
}

/// A borrowed read view of a column's codes across its chunks.
///
/// Sequential scans should iterate [`CodesView::chunks`] — each chunk is
/// a plain dense `&[u32]`, so the inner loop pays no per-row division.
/// Random access uses [`CodesView::at`] (or indexing, which returns the
/// code by value). All columns of one relation share a chunk layout, so
/// views over them yield aligned chunks (see
/// [`zip_chunks`](crate::Relation::code_views) users).
#[derive(Clone, Copy)]
pub struct CodesView<'a> {
    chunks: &'a [Vec<u32>],
    len: usize,
    chunk_rows: usize,
}

impl<'a> CodesView<'a> {
    /// Number of rows.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view covers no rows.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The chunk size of the underlying column.
    #[inline]
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// Number of chunks (0 for an empty column).
    #[inline]
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The codes of chunk `ci` as a dense slice.
    #[inline]
    pub fn chunk(&self, ci: usize) -> &'a [u32] {
        &self.chunks[ci]
    }

    /// The code at `row` (random access: one division by the chunk
    /// size). Panics if `row` is out of bounds.
    #[inline]
    pub fn at(&self, row: usize) -> u32 {
        self.chunks[row / self.chunk_rows][row % self.chunk_rows]
    }

    /// The code at `row`, or `None` past the end.
    #[inline]
    pub fn get(&self, row: usize) -> Option<u32> {
        if row < self.len {
            Some(self.at(row))
        } else {
            None
        }
    }

    /// The last code, if any.
    pub fn last(&self) -> Option<u32> {
        self.chunks.last().and_then(|c| c.last().copied())
    }

    /// Iterates all codes in row order (chunk-wise internally).
    pub fn iter(&self) -> impl Iterator<Item = u32> + 'a {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    /// Iterates the chunks as dense slices, in row order — the scan
    /// fast path.
    pub fn chunks(&self) -> impl Iterator<Item = &'a [u32]> + 'a {
        self.chunks.iter().map(Vec::as_slice)
    }

    /// Collects the codes into one contiguous vector (test/debug and
    /// cold-path helper).
    pub fn to_vec(&self) -> Vec<u32> {
        let mut out = Vec::with_capacity(self.len);
        for c in self.chunks {
            out.extend_from_slice(c);
        }
        out
    }
}

impl Index<usize> for CodesView<'_> {
    type Output = u32;
    #[inline]
    fn index(&self, row: usize) -> &u32 {
        &self.chunks[row / self.chunk_rows][row % self.chunk_rows]
    }
}

impl fmt::Debug for CodesView<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

impl PartialEq for CodesView<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl PartialEq<[u32]> for CodesView<'_> {
    fn eq(&self, other: &[u32]) -> bool {
        self.len == other.len() && self.iter().eq(other.iter().copied())
    }
}

impl PartialEq<&[u32]> for CodesView<'_> {
    fn eq(&self, other: &&[u32]) -> bool {
        *self == **other
    }
}

impl PartialEq<Vec<u32>> for CodesView<'_> {
    fn eq(&self, other: &Vec<u32>) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<[u32; N]> for CodesView<'_> {
    fn eq(&self, other: &[u32; N]) -> bool {
        *self == other[..]
    }
}

impl<const N: usize> PartialEq<&[u32; N]> for CodesView<'_> {
    fn eq(&self, other: &&[u32; N]) -> bool {
        *self == other[..]
    }
}

/// Walks the aligned chunks of several views in lockstep, calling
/// `f(base_row, chunk_slices)` once per chunk with the dense per-column
/// slices of that chunk. Every view must have the same length and chunk
/// size (true for columns of one relation — the constructors capture one
/// chunk size for all of them); with no views, `f` is never called.
///
/// This is the multi-column scan fast path: the callee indexes plain
/// `&[u32]` slices relative to the chunk, with `base_row` recovering
/// global row indices.
pub fn zip_chunks<'a>(views: &[CodesView<'a>], mut f: impl FnMut(usize, &[&'a [u32]])) {
    let Some(first) = views.first() else { return };
    zip_chunks_range(views, 0, first.len, |base, lo, hi, slices| {
        debug_assert!(lo == 0 && base % first.chunk_rows == 0);
        debug_assert_eq!(hi, slices[0].len());
        f(base, slices);
    });
}

/// [`zip_chunks`] restricted to the global row range `start..end`: calls
/// `f(chunk_base_row, lo, hi, chunk_slices)` once per chunk overlapping
/// the range, where the in-range rows of that chunk are
/// `chunk_base_row + r` for `r in lo..hi`. Morsel workers use this to
/// scan one chunk-aligned slice of a fragment; unaligned ranges work too
/// (the first/last chunks are walked partially).
pub fn zip_chunks_range<'a>(
    views: &[CodesView<'a>],
    start: usize,
    end: usize,
    mut f: impl FnMut(usize, usize, usize, &[&'a [u32]]),
) {
    let Some(first) = views.first() else { return };
    debug_assert!(
        views.iter().all(|v| v.len == first.len && v.chunk_rows == first.chunk_rows),
        "zip_chunks requires aligned chunk layouts (columns of one relation)"
    );
    debug_assert!(start <= end && end <= first.len);
    if start >= end {
        return;
    }
    let cr = first.chunk_rows;
    let mut slices: Vec<&'a [u32]> = Vec::with_capacity(views.len());
    for ci in start / cr..end.div_ceil(cr) {
        let base = ci * cr;
        slices.clear();
        slices.extend(views.iter().map(|v| v.chunk(ci)));
        let lo = start.saturating_sub(base);
        let hi = (end - base).min(slices[0].len());
        f(base, lo, hi, &slices);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let d = Dictionary::new();
        let (a, _) = d.intern(&Value::str("x"));
        let (b, _) = d.intern(&Value::Int(7));
        let (a2, _) = d.intern(&Value::str("x"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.code_of(&Value::Int(7)), Some(1));
        assert_eq!(d.code_of(&Value::Null), None);
        assert_eq!(d.value(0), Value::str("x"));
    }

    #[test]
    fn canonical_value_shares_allocation() {
        let d = Dictionary::new();
        let (_, first) = d.intern(&Value::str("hello"));
        let (_, second) = d.intern(&Value::str(String::from("hello")));
        if let (Value::Str(a), Value::Str(b)) = (&first, &second) {
            assert!(Arc::ptr_eq(a, b), "intern should return the canonical payload");
        } else {
            panic!("expected strings");
        }
    }

    #[test]
    fn rank_map_orders_like_values() {
        let d = Dictionary::new();
        // Insert out of Value order on purpose.
        d.intern(&Value::str("b"));
        d.intern(&Value::Int(10));
        d.intern(&Value::Null);
        d.intern(&Value::str("a"));
        let rank = d.rank_map();
        // Null < Int(10) < "a" < "b".
        assert_eq!(rank, vec![3, 1, 0, 2]);
    }

    #[test]
    fn column_round_trips_values() {
        let mut c = Column::new();
        c.push(&Value::Int(1));
        c.push(&Value::str("v"));
        c.push(&Value::Int(1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.codes(), &[0, 1, 0]);
        assert_eq!(c.decode(1), Value::str("v"));
        assert_eq!(c.to_string(), "Column[3 rows, 2 distinct]");
    }

    #[test]
    fn push_cached_agrees_with_push_and_skips_the_dictionary() {
        let mut plain = Column::new();
        let mut cached = Column::new();
        let mut memo = FxHashMap::default();
        let values = [Value::str("x"), Value::Int(3), Value::str("x"), Value::str("y")];
        for v in &values {
            assert_eq!(plain.push(v), cached.push_cached(v, &mut memo));
        }
        assert_eq!(plain.codes(), cached.codes());
        assert_eq!(cached.dict().snapshot(), plain.dict().snapshot());
        // The memo holds one entry per distinct value, keyed canonically.
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn retain_rows_keeps_order_and_dictionary() {
        let mut c = Column::new();
        for v in ["a", "b", "a", "c", "b"] {
            c.push(&Value::str(v));
        }
        c.retain_rows(&[true, false, true, false, true]);
        assert_eq!(c.codes(), &[0, 0, 1]);
        // The dictionary keeps every value it ever interned.
        assert_eq!(c.dict().len(), 3);
        assert_eq!(c.decode(2), Value::str("b"));
    }

    #[test]
    fn sharing_columns_agree_on_codes() {
        let mut a = Column::new();
        a.push(&Value::str("x"));
        a.push(&Value::str("y"));
        let mut b = Column::sharing(a.dict().clone());
        b.push(&Value::str("y"));
        assert_eq!(b.codes(), &[1], "shared dictionary must reuse the parent's codes");
    }

    #[test]
    fn sentinels_are_disjoint_from_codes() {
        assert_ne!(WILDCARD_CODE, NO_CODE);
        let d = Dictionary::new();
        let (code, _) = d.intern(&Value::Int(0));
        // NO_CODE < WILDCARD_CODE, so this bounds the code below both.
        assert!(code < NO_CODE);
    }

    /// Builds a column with chunk size `rows`, restoring the previous
    /// setting afterwards. The override is process-global and the test
    /// harness runs tests concurrently, so chunk-size tests serialize
    /// through one lock.
    fn with_chunk_rows<T>(rows: usize, f: impl FnOnce() -> T) -> T {
        static GUARD: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = GUARD.lock().expect("chunk-size test lock poisoned");
        set_chunk_rows(Some(rows));
        let out = f();
        set_chunk_rows(None);
        out
    }

    #[test]
    fn chunked_column_matches_flat_semantics() {
        let codes: Vec<u32> = (0..23).map(|i| i % 5).collect();
        for rows in [1, 3, 7, 23, 64] {
            let c = with_chunk_rows(rows, || {
                let mut c = Column::new();
                for &k in &codes {
                    c.push(&Value::Int(k as i64));
                }
                c
            });
            assert_eq!(c.chunk_rows(), rows);
            assert_eq!(c.codes().to_vec(), codes, "rows = {rows}");
            assert_eq!(c.codes().n_chunks(), codes.len().div_ceil(rows));
            for (i, &k) in codes.iter().enumerate() {
                assert_eq!(c.codes().at(i), k);
                assert_eq!(c.codes()[i], k);
            }
            assert_eq!(c.codes().get(codes.len()), None);
            assert_eq!(c.codes().last(), codes.last().copied());
            assert_eq!(c.last_code(), codes.last().copied());
            // Every chunk except the last is exactly full.
            let sizes: Vec<usize> = c.codes().chunks().map(<[u32]>::len).collect();
            for (ci, &s) in sizes.iter().enumerate() {
                if ci + 1 < sizes.len() {
                    assert_eq!(s, rows, "chunk {ci} of {sizes:?}");
                } else {
                    assert!(s >= 1 && s <= rows);
                }
            }
        }
    }

    #[test]
    fn retain_rows_repacks_across_chunk_seams() {
        let c = with_chunk_rows(4, || {
            let mut c = Column::new();
            for i in 0..11 {
                c.push(&Value::Int(i));
            }
            let keep: Vec<bool> = (0..11).map(|i| i % 3 != 1).collect();
            c.retain_rows(&keep);
            c
        });
        let want: Vec<u32> = (0..11).filter(|i| i % 3 != 1).map(|i| i as u32).collect();
        assert_eq!(c.codes().to_vec(), want);
        // Re-packed dense: all chunks full except the last.
        let sizes: Vec<usize> = c.codes().chunks().map(<[u32]>::len).collect();
        assert_eq!(sizes, vec![4, 3]);
    }

    #[test]
    fn zip_chunks_walks_aligned_layouts() {
        let (a, b) = with_chunk_rows(5, || {
            let mut a = Column::new();
            let mut b = Column::new();
            for i in 0..12 {
                a.push(&Value::Int(i));
                b.push(&Value::Int(i * 10));
            }
            (a, b)
        });
        let mut seen: Vec<(usize, u32, u32)> = Vec::new();
        zip_chunks(&[a.codes(), b.codes()], |base, cols| {
            assert_eq!(cols.len(), 2);
            for (i, (&ca, &cb)) in cols[0].iter().zip(cols[1]).enumerate() {
                seen.push((base + i, ca, cb));
            }
        });
        assert_eq!(seen.len(), 12);
        for (row, ca, cb) in seen {
            assert_eq!(a.codes().at(row), ca);
            assert_eq!(b.codes().at(row), cb);
        }
    }

    #[test]
    fn chunk_rows_env_and_default() {
        // Whatever the environment says, the resolved size is positive
        // and the override wins.
        assert!(chunk_rows() >= 1);
        with_chunk_rows(123, || assert_eq!(chunk_rows(), 123));
        assert!(chunk_rows() >= 1);
    }
}
