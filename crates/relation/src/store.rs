//! Dictionary-encoded columnar storage.
//!
//! Every [`Relation`](crate::Relation) keeps, alongside its row vector, one
//! [`Column`] per attribute: a dense array of `u32` *codes*, each code
//! naming a distinct [`Value`] in the column's [`Dictionary`]. The hot
//! detection loops (GROUP BY on `t[X]`, σ-partitioning, pattern matching,
//! join keys) then run on integer codes instead of hashing and comparing
//! owned values:
//!
//! * two cells of one column are equal iff their codes are equal — the
//!   dictionary is a bijection between codes and distinct values;
//! * a pattern constant compiles to *one* dictionary lookup per relation
//!   (see `dcd_cfd::CompiledPattern`), after which the match operator `≍`
//!   is a `u32` compare;
//! * a group key over `k` attributes is a `[u32; k]` (packed into a single
//!   `u64` when `k ≤ 2`), so the group-by hash touches no string payloads.
//!
//! Dictionaries are shared across fragments of one relation (`Arc`): a
//! fragment constructor re-encodes nothing, and codes remain comparable
//! between the parent and every fragment. Interning is append-only behind
//! an `RwLock`; the per-tuple hot paths never take the lock — they read
//! plain `&[u32]` code slices and only touch the dictionary to decode one
//! value per *group* (or per pattern constant), not per tuple.

use crate::fxhash::FxHashMap;
use crate::value::Value;
use std::fmt;
use std::sync::{Arc, RwLock};

/// Sentinel code meaning "matches any value" in compiled pattern cells.
/// Never assigned to a real value.
pub const WILDCARD_CODE: u32 = u32::MAX;

/// Sentinel code meaning "this value is not in the dictionary" (e.g. a
/// pattern constant that no tuple carries, or a join key with no partner).
/// Never assigned to a real value, and never equal to any stored code.
pub const NO_CODE: u32 = u32::MAX - 1;

/// Codes at or above this bound are reserved for the sentinels above.
const CODE_LIMIT: u32 = u32::MAX - 2;

#[derive(Debug, Default)]
struct DictInner {
    /// `values[code]` is the canonical value for `code`.
    values: Vec<Value>,
    /// Inverse map, value → code.
    codes: FxHashMap<Value, u32>,
}

/// An append-only interning dictionary for one attribute: each distinct
/// [`Value`] maps to a dense `u32` code in first-seen order.
///
/// Shared via `Arc` between a relation and all of its fragments, so codes
/// are comparable across them. All methods take `&self`; interning is
/// synchronized internally.
#[derive(Debug, Default)]
pub struct Dictionary {
    inner: RwLock<DictInner>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct values interned so far.
    pub fn len(&self) -> usize {
        self.inner.read().expect("dictionary lock poisoned").values.len()
    }

    /// Whether no value has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Interns `v`, returning its code and the canonical stored value
    /// (so callers can share the canonical `Arc<str>` payload instead of
    /// keeping their own copy).
    pub fn intern(&self, v: &Value) -> (u32, Value) {
        if let Some(hit) = self.lookup(v) {
            return hit;
        }
        let mut inner = self.inner.write().expect("dictionary lock poisoned");
        // Re-check: another writer may have interned between the locks.
        if let Some(&code) = inner.codes.get(v) {
            return (code, inner.values[code as usize].clone());
        }
        let code = inner.values.len() as u32;
        assert!(code < CODE_LIMIT, "dictionary exhausted the u32 code space");
        inner.values.push(v.clone());
        inner.codes.insert(v.clone(), code);
        (code, v.clone())
    }

    fn lookup(&self, v: &Value) -> Option<(u32, Value)> {
        let inner = self.inner.read().expect("dictionary lock poisoned");
        inner.codes.get(v).map(|&code| (code, inner.values[code as usize].clone()))
    }

    /// The code of `v`, if it has been interned ([`NO_CODE`]-free lookup
    /// used when compiling pattern constants and translating join keys).
    pub fn code_of(&self, v: &Value) -> Option<u32> {
        self.inner.read().expect("dictionary lock poisoned").codes.get(v).copied()
    }

    /// The canonical value of `code` (O(1) clone — see [`Value`]).
    ///
    /// Panics if `code` was never assigned (codes must come from this
    /// dictionary or a relation sharing it).
    pub fn value(&self, code: u32) -> Value {
        self.inner.read().expect("dictionary lock poisoned").values[code as usize].clone()
    }

    /// Maps every current code to its rank under the [`Value`] total
    /// order: `rank[code_of(v)] < rank[code_of(w)]` iff `v < w`. Sorting
    /// rows by rank keys is therefore identical to sorting by values,
    /// while comparing only integers.
    pub fn rank_map(&self) -> Vec<u32> {
        let inner = self.inner.read().expect("dictionary lock poisoned");
        let mut order: Vec<u32> = (0..inner.values.len() as u32).collect();
        order.sort_by(|&a, &b| inner.values[a as usize].cmp(&inner.values[b as usize]));
        let mut rank = vec![0u32; order.len()];
        for (r, &code) in order.iter().enumerate() {
            rank[code as usize] = r as u32;
        }
        rank
    }

    /// A point-in-time copy of the code → value table (test/debug helper).
    pub fn snapshot(&self) -> Vec<Value> {
        self.inner.read().expect("dictionary lock poisoned").values.clone()
    }
}

impl Clone for Dictionary {
    /// Deep copy: the clone interns independently from the original.
    /// (Fragments that must share codes clone the `Arc`, not the
    /// dictionary.)
    fn clone(&self) -> Self {
        let inner = self.inner.read().expect("dictionary lock poisoned");
        Dictionary {
            inner: RwLock::new(DictInner {
                values: inner.values.clone(),
                codes: inner.codes.clone(),
            }),
        }
    }
}

/// One dictionary-encoded column of a relation: a shared [`Dictionary`]
/// plus a dense array of codes, one per row in insertion order.
#[derive(Debug, Clone)]
pub struct Column {
    dict: Arc<Dictionary>,
    codes: Vec<u32>,
}

impl Column {
    /// Creates an empty column over a fresh dictionary.
    pub fn new() -> Self {
        Column { dict: Arc::new(Dictionary::new()), codes: Vec::new() }
    }

    /// Creates an empty column sharing `dict` (fragment construction:
    /// codes stay comparable with every other column over `dict`).
    pub fn sharing(dict: Arc<Dictionary>) -> Self {
        Column { dict, codes: Vec::new() }
    }

    /// Creates an empty column sharing `dict`, with room for `cap` rows.
    pub fn sharing_with_capacity(dict: Arc<Dictionary>, cap: usize) -> Self {
        Column { dict, codes: Vec::with_capacity(cap) }
    }

    /// The column's dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// The code array, one entry per row.
    #[inline]
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Appends a value, interning it; returns the canonical value so the
    /// caller's row store can share the dictionary's allocation.
    pub fn push(&mut self, v: &Value) -> Value {
        let (code, canonical) = self.dict.intern(v);
        self.codes.push(code);
        canonical
    }

    /// [`Column::push`] through a run-local memo: a value already in
    /// `memo` never touches the dictionary (and its lock) again. Bulk
    /// ingest keeps one memo per column per batch, so each *distinct*
    /// value costs one dictionary access per batch instead of one per
    /// row — on low-cardinality columns the lock all but disappears.
    pub fn push_cached(&mut self, v: &Value, memo: &mut FxHashMap<Value, (u32, Value)>) -> Value {
        if let Some((code, canonical)) = memo.get(v) {
            self.codes.push(*code);
            return canonical.clone();
        }
        let (code, canonical) = self.dict.intern(v);
        self.codes.push(code);
        memo.insert(canonical.clone(), (code, canonical.clone()));
        canonical
    }

    /// Appends an *already interned* code (the receiving end of the
    /// code-shipped wire: the sender's codes are valid here because the
    /// two columns share one dictionary). Returns the decoded canonical
    /// value for the caller's row view — a dictionary array read, no
    /// hashing or re-interning.
    ///
    /// Panics if `code` was never assigned by this column's dictionary.
    pub fn push_code(&mut self, code: u32) -> Value {
        let canonical = self.dict.value(code);
        self.codes.push(code);
        canonical
    }

    /// Reserves room for `extra` more rows.
    pub fn reserve(&mut self, extra: usize) {
        self.codes.reserve(extra);
    }

    /// Drops every row whose `keep` flag is false, preserving the order
    /// of the kept rows (`keep.len()` must equal the column length).
    /// The delta-maintenance hook: dictionaries are append-only, so a
    /// removed row's code simply stops being referenced — codes are
    /// never recycled and stay decodable.
    pub fn retain_rows(&mut self, keep: &[bool]) {
        debug_assert_eq!(keep.len(), self.codes.len());
        let mut i = 0;
        self.codes.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }

    /// Decodes the value at `row`.
    pub fn decode(&self, row: usize) -> Value {
        self.dict.value(self.codes[row])
    }
}

impl Default for Column {
    fn default() -> Self {
        Column::new()
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Column[{} rows, {} distinct]", self.codes.len(), self.dict.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent_and_dense() {
        let d = Dictionary::new();
        let (a, _) = d.intern(&Value::str("x"));
        let (b, _) = d.intern(&Value::Int(7));
        let (a2, _) = d.intern(&Value::str("x"));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(a, a2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.code_of(&Value::Int(7)), Some(1));
        assert_eq!(d.code_of(&Value::Null), None);
        assert_eq!(d.value(0), Value::str("x"));
    }

    #[test]
    fn canonical_value_shares_allocation() {
        let d = Dictionary::new();
        let (_, first) = d.intern(&Value::str("hello"));
        let (_, second) = d.intern(&Value::str(String::from("hello")));
        if let (Value::Str(a), Value::Str(b)) = (&first, &second) {
            assert!(Arc::ptr_eq(a, b), "intern should return the canonical payload");
        } else {
            panic!("expected strings");
        }
    }

    #[test]
    fn rank_map_orders_like_values() {
        let d = Dictionary::new();
        // Insert out of Value order on purpose.
        d.intern(&Value::str("b"));
        d.intern(&Value::Int(10));
        d.intern(&Value::Null);
        d.intern(&Value::str("a"));
        let rank = d.rank_map();
        // Null < Int(10) < "a" < "b".
        assert_eq!(rank, vec![3, 1, 0, 2]);
    }

    #[test]
    fn column_round_trips_values() {
        let mut c = Column::new();
        c.push(&Value::Int(1));
        c.push(&Value::str("v"));
        c.push(&Value::Int(1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.codes(), &[0, 1, 0]);
        assert_eq!(c.decode(1), Value::str("v"));
        assert_eq!(c.to_string(), "Column[3 rows, 2 distinct]");
    }

    #[test]
    fn push_cached_agrees_with_push_and_skips_the_dictionary() {
        let mut plain = Column::new();
        let mut cached = Column::new();
        let mut memo = FxHashMap::default();
        let values = [Value::str("x"), Value::Int(3), Value::str("x"), Value::str("y")];
        for v in &values {
            assert_eq!(plain.push(v), cached.push_cached(v, &mut memo));
        }
        assert_eq!(plain.codes(), cached.codes());
        assert_eq!(cached.dict().snapshot(), plain.dict().snapshot());
        // The memo holds one entry per distinct value, keyed canonically.
        assert_eq!(memo.len(), 3);
    }

    #[test]
    fn retain_rows_keeps_order_and_dictionary() {
        let mut c = Column::new();
        for v in ["a", "b", "a", "c", "b"] {
            c.push(&Value::str(v));
        }
        c.retain_rows(&[true, false, true, false, true]);
        assert_eq!(c.codes(), &[0, 0, 1]);
        // The dictionary keeps every value it ever interned.
        assert_eq!(c.dict().len(), 3);
        assert_eq!(c.decode(2), Value::str("b"));
    }

    #[test]
    fn sharing_columns_agree_on_codes() {
        let mut a = Column::new();
        a.push(&Value::str("x"));
        a.push(&Value::str("y"));
        let mut b = Column::sharing(a.dict().clone());
        b.push(&Value::str("y"));
        assert_eq!(b.codes(), &[1], "shared dictionary must reuse the parent's codes");
    }

    #[test]
    fn sentinels_are_disjoint_from_codes() {
        assert_ne!(WILDCARD_CODE, NO_CODE);
        let d = Dictionary::new();
        let (code, _) = d.intern(&Value::Int(0));
        // NO_CODE < WILDCARD_CODE, so this bounds the code below both.
        assert!(code < NO_CODE);
    }
}
