//! Tuples: value rows with stable identifiers.

use crate::schema::AttrId;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A stable identifier for a tuple of the *original* (unfragmented)
/// relation.
///
/// Fragmentation preserves tuple ids, so a tuple shipped between sites can
/// always be traced back, and violation sets computed by different
/// algorithms can be compared for equality in tests. This mirrors the
/// paper's assumption of "system assigned tuple IDs" (§II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TupleId(pub u64);

impl fmt::Display for TupleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A tuple: an id plus one [`Value`] per schema attribute.
///
/// Values are stored in a boxed slice (two words, no spare capacity); with
/// `Value` clones being O(1), cloning a tuple for shipment costs one small
/// allocation plus reference-count bumps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tuple {
    /// Stable id of the tuple in the original relation.
    pub tid: TupleId,
    values: Box<[Value]>,
}

impl Tuple {
    /// Creates a tuple from an id and values.
    pub fn new(tid: TupleId, values: Vec<Value>) -> Self {
        Tuple { tid, values: values.into_boxed_slice() }
    }

    /// The value of attribute `A`: `t[A]`.
    #[inline]
    pub fn get(&self, attr: AttrId) -> &Value {
        &self.values[attr.index()]
    }

    /// All values in schema order.
    #[inline]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Number of values (matches the schema arity).
    #[inline]
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// The projection `t[X]` onto an attribute list, cloning values
    /// (cheaply — see [`Value`]) into a fresh vector.
    pub fn project(&self, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|&a| self.values[a.index()].clone()).collect()
    }

    /// Tests `t1[X] = t2[X]` for an attribute list without materializing
    /// the projections.
    pub fn eq_on(&self, other: &Tuple, attrs: &[AttrId]) -> bool {
        attrs.iter().all(|&a| self.values[a.index()] == other.values[a.index()])
    }

    /// Approximate wire size in bytes when shipping this tuple whole.
    pub fn wire_size(&self) -> usize {
        8 + self.values.iter().map(Value::wire_size).sum::<usize>()
    }

    /// Approximate wire size in bytes when shipping only `attrs`.
    pub fn wire_size_of(&self, attrs: &[AttrId]) -> usize {
        8 + attrs.iter().map(|&a| self.values[a.index()].wire_size()).sum::<usize>()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.tid)?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vals;

    fn t(id: u64, vs: Vec<Value>) -> Tuple {
        Tuple::new(TupleId(id), vs)
    }

    #[test]
    fn get_and_project() {
        let tup = t(1, vals![44, "EDI", "EH2"]);
        assert_eq!(tup.get(AttrId(0)), &Value::Int(44));
        assert_eq!(tup.project(&[AttrId(2), AttrId(0)]), vals!["EH2", 44]);
    }

    #[test]
    fn eq_on_subset() {
        let a = t(1, vals![44, "EDI", "x"]);
        let b = t(2, vals![44, "EDI", "y"]);
        assert!(a.eq_on(&b, &[AttrId(0), AttrId(1)]));
        assert!(!a.eq_on(&b, &[AttrId(2)]));
        assert!(a.eq_on(&b, &[])); // vacuous
    }

    #[test]
    fn tuple_identity_vs_content() {
        let a = t(1, vals![1]);
        let b = t(2, vals![1]);
        assert_ne!(a, b); // same content, different tid
        assert!(a.eq_on(&b, &[AttrId(0)]));
    }

    #[test]
    fn wire_sizes() {
        let tup = t(1, vals![44, "abc"]);
        assert_eq!(tup.wire_size(), 8 + 8 + 5);
        assert_eq!(tup.wire_size_of(&[AttrId(0)]), 16);
    }

    #[test]
    fn display() {
        let tup = t(7, vals![1, "a"]);
        assert_eq!(tup.to_string(), "t7(1, a)");
    }
}
