//! Dynamically typed cell values.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::sync::Arc;

/// A single cell value in a relation.
///
/// Strings are reference-counted (`Arc<str>`) so that projecting and
/// shipping tuples around the simulated network never deep-copies string
/// payloads; cloning a [`Value`] is always O(1).
///
/// `Null` is used by `Vioπ` (the X-projected violation view of §II-C of
/// the paper) for the attributes outside `X`, and compares equal only to
/// itself — adequate for detection, which never joins on nulls.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// SQL NULL / "no value".
    #[default]
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// Interned UTF-8 string.
    Str(Arc<str>),
}

impl Value {
    /// Creates a string value.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Creates an integer value.
    pub const fn int(i: i64) -> Self {
        Value::Int(i)
    }

    /// Returns `true` iff this value is [`Value::Null`].
    pub const fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload if this is an `Int`.
    pub const fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the string payload if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name of the runtime type, for error messages.
    pub const fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Int(_) => "Int",
            Value::Str(_) => "Str",
        }
    }

    /// Approximate wire size of the value in bytes, used by the network
    /// simulator to account for shipped data volume.
    pub fn wire_size(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Str(s) => 2 + s.len(),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<u32> for Value {
    fn from(i: u32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(Arc::from(s.as_str()))
    }
}

impl From<Arc<str>> for Value {
    fn from(s: Arc<str>) -> Self {
        Value::Str(s)
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: `Null < Int(_) < Str(_)`; integers numerically,
    /// strings lexicographically. A total order (rather than SQL's
    /// three-valued comparisons) keeps sorting and deduplication simple.
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(_), Str(_)) => Ordering::Less,
            (Str(_), Int(_)) => Ordering::Greater,
            (Str(a), Str(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from(5i32), Value::Int(5));
        assert_eq!(Value::from("x"), Value::str("x"));
        assert_eq!(Value::from(String::from("y")), Value::str("y"));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::str("a").as_str(), Some("a"));
        assert_eq!(Value::Null.as_int(), None);
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
    }

    #[test]
    fn ordering_is_total_and_stratified() {
        let mut vs =
            vec![Value::str("b"), Value::Int(10), Value::Null, Value::Int(-1), Value::str("a")];
        vs.sort();
        assert_eq!(
            vs,
            vec![Value::Null, Value::Int(-1), Value::Int(10), Value::str("a"), Value::str("b")]
        );
    }

    #[test]
    fn equality_is_by_content_not_pointer() {
        let a = Value::str("hello");
        let b = Value::str(String::from("hello"));
        assert_eq!(a, b);
    }

    #[test]
    fn clone_is_cheap_and_equal() {
        let a = Value::str("some long string that would be expensive to copy");
        let b = a.clone();
        assert_eq!(a, b);
        if let (Value::Str(x), Value::Str(y)) = (&a, &b) {
            assert!(Arc::ptr_eq(x, y), "clone should share the allocation");
        }
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("EDI").to_string(), "EDI");
    }

    #[test]
    fn wire_size_accounts_for_payload() {
        assert_eq!(Value::Null.wire_size(), 1);
        assert_eq!(Value::Int(1).wire_size(), 8);
        assert_eq!(Value::str("abcd").wire_size(), 6);
    }
}
