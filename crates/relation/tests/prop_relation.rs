//! Property-based tests for the relational substrate: predicate
//! evaluation vs. satisfiability soundness, and the algebraic laws of
//! the physical operators.

use dcd_relation::ops;
use dcd_relation::{
    vals, Atom, CmpOp, Conjunction, Predicate, Relation, Schema, Tuple, TupleId, Value, ValueType,
};
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .key(&[])
        .build()
        .unwrap()
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8)>> {
    prop::collection::vec((-3..4i64, -3..4i64, 0..4u8), 0..40)
}

fn build(rows: &[(i64, i64, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter().map(|&(a, b, c)| vals![a, b, format!("s{c}")]).collect(),
    )
    .unwrap()
}

#[derive(Debug, Clone)]
enum AtomSpec {
    IntCmp(u8, CmpOp, i64), // attr 0/1
    StrEq(u8, bool),        // value index, negated?
}

fn arb_atom() -> impl Strategy<Value = AtomSpec> {
    prop_oneof![
        (0..2u8, arb_op(), -3..4i64).prop_map(|(a, op, v)| AtomSpec::IntCmp(a, op, v)),
        (0..4u8, any::<bool>()).prop_map(|(v, neg)| AtomSpec::StrEq(v, neg)),
    ]
}

fn arb_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn build_conj(specs: &[AtomSpec]) -> Conjunction {
    let mut c = Conjunction::always();
    for spec in specs {
        let atom = match spec {
            AtomSpec::IntCmp(a, op, v) => Atom::new(dcd_relation::AttrId(*a as u16), *op, *v),
            AtomSpec::StrEq(v, neg) => Atom::new(
                dcd_relation::AttrId(2),
                if *neg { CmpOp::Ne } else { CmpOp::Eq },
                format!("s{v}"),
            ),
        };
        c = c.and(atom);
    }
    c
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Satisfiability soundness: when the solver says "unsatisfiable",
    /// genuinely no tuple over the sampled domain satisfies the formula.
    /// (The converse is allowed to fail — the solver is conservative.)
    #[test]
    fn unsat_means_no_satisfying_tuple(
        specs in prop::collection::vec(arb_atom(), 0..6),
        rows in arb_rows(),
    ) {
        let c = build_conj(&specs);
        if !c.is_satisfiable() {
            let rel = build(&rows);
            for t in rel.iter() {
                prop_assert!(!c.eval(t), "unsat formula satisfied by {t}");
            }
        }
    }

    /// Conjunction evaluation is the conjunction of atom evaluations.
    #[test]
    fn conjunction_is_pointwise_and(
        specs in prop::collection::vec(arb_atom(), 0..5),
        row in (-3..4i64, -3..4i64, 0..4u8),
    ) {
        let c = build_conj(&specs);
        let t = Tuple::new(TupleId(0), vals![row.0, row.1, format!("s{}", row.2)]);
        let expect = c.atoms().iter().all(|a| a.eval(&t));
        prop_assert_eq!(c.eval(&t), expect);
    }

    /// DNF laws: `eval(p ∨ q) = eval(p) ∨ eval(q)` and
    /// `eval(p ∧ q) = eval(p) ∧ eval(q)`.
    #[test]
    fn dnf_combinators_are_boolean(
        sp in prop::collection::vec(arb_atom(), 0..3),
        sq in prop::collection::vec(arb_atom(), 0..3),
        row in (-3..4i64, -3..4i64, 0..4u8),
    ) {
        let p = Predicate::from_conjunction(build_conj(&sp));
        let q = Predicate::from_conjunction(build_conj(&sq));
        let t = Tuple::new(TupleId(0), vals![row.0, row.1, format!("s{}", row.2)]);
        prop_assert_eq!(p.clone().or(q.clone()).eval(&t), p.eval(&t) || q.eval(&t));
        prop_assert_eq!(p.and(&q).eval(&t), p.eval(&t) && q.eval(&t));
    }

    /// Selection returns exactly the satisfying tuples, ids preserved.
    #[test]
    fn select_is_a_filter(
        specs in prop::collection::vec(arb_atom(), 0..4),
        rows in arb_rows(),
    ) {
        let rel = build(&rows);
        let p = Predicate::from_conjunction(build_conj(&specs));
        let sel = ops::select(&rel, &p);
        let expect: Vec<TupleId> =
            rel.iter().filter(|t| p.eval(t)).map(|t| t.tid).collect();
        let got: Vec<TupleId> = sel.iter().map(|t| t.tid).collect();
        prop_assert_eq!(got, expect);
    }

    /// Grouping partitions the relation: blocks are disjoint and cover
    /// every tuple, and members agree on the grouped attributes.
    #[test]
    fn group_by_partitions(rows in arb_rows()) {
        let rel = build(&rows);
        let attrs = [dcd_relation::AttrId(0), dcd_relation::AttrId(2)];
        let groups = ops::group_by(&rel, &attrs);
        let total: usize = groups.values().map(Vec::len).sum();
        prop_assert_eq!(total, rel.len());
        for (key, members) in &groups {
            for &i in members {
                prop_assert_eq!(&rel.tuples()[i].project(&attrs), key);
            }
        }
    }

    /// Vertical split + key join restores the original relation.
    #[test]
    fn project_join_round_trip(rows in arb_rows()) {
        // Need a key: re-build with an id column.
        let s = Schema::builder("k")
            .attr("id", ValueType::Int)
            .attr("a", ValueType::Int)
            .attr("c", ValueType::Str)
            .key(&["id"])
            .build()
            .unwrap();
        let rel = Relation::from_rows(
            s.clone(),
            rows.iter()
                .enumerate()
                .map(|(i, &(a, _, c))| vals![i, a, format!("s{c}")])
                .collect(),
        )
        .unwrap();
        let id = s.require("id").unwrap();
        let a = s.require("a").unwrap();
        let c = s.require("c").unwrap();
        let left = ops::project(&rel, "l", &[id, a]).unwrap();
        let right = ops::project(&rel, "r", &[id, c]).unwrap();
        let joined = ops::hash_join(
            &left,
            &right,
            &[left.schema().require("id").unwrap()],
            &[right.schema().require("id").unwrap()],
            "j",
        )
        .unwrap();
        prop_assert_eq!(joined.len(), rel.len());
        for t in joined.iter() {
            let orig = rel.iter().find(|o| o.get(id) == t.get(dcd_relation::AttrId(0))).unwrap();
            prop_assert_eq!(t.get(dcd_relation::AttrId(1)), orig.get(a));
            prop_assert_eq!(t.get(dcd_relation::AttrId(2)), orig.get(c));
        }
    }

    /// The bulk ingest path (`extend_rows`, with per-column interning
    /// memos) is observationally identical to cell-by-cell `push`:
    /// same tuples, same codes, same dictionary contents.
    #[test]
    fn bulk_extend_rows_matches_push(rows in arb_rows()) {
        let mut pushed = Relation::new(schema());
        for &(a, b, c) in &rows {
            pushed.push(vals![a, b, format!("s{c}")]).unwrap();
        }
        // `build` goes through from_rows → extend_rows.
        let bulk = build(&rows);
        prop_assert_eq!(bulk.tuples(), pushed.tuples());
        for (ca, cb) in bulk.columns().iter().zip(pushed.columns()) {
            prop_assert_eq!(ca.codes(), cb.codes());
            prop_assert_eq!(ca.dict().snapshot(), cb.dict().snapshot());
        }
    }

    /// Columnar encode → decode is the identity: every cell's code
    /// decodes back to the value stored in the row view, per-column code
    /// equality coincides with value equality, and a relation rebuilt
    /// from the decoded cells is cell-for-cell identical. (Both the
    /// original and the rebuilt relation ingest through the bulk
    /// `extend_rows` path, so this round-trip also pins its encoding.)
    #[test]
    fn columnar_round_trip_is_identity(rows in arb_rows()) {
        let rel = build(&rows);
        for (ai, col) in rel.columns().iter().enumerate() {
            prop_assert_eq!(col.len(), rel.len());
            let attr = dcd_relation::AttrId(ai as u16);
            for (i, t) in rel.iter().enumerate() {
                prop_assert_eq!(&col.decode(i), t.get(attr));
            }
            // Bijection: equal codes ⟺ equal values.
            for i in 0..rel.len() {
                for j in (i + 1)..rel.len() {
                    prop_assert_eq!(
                        col.codes()[i] == col.codes()[j],
                        rel.tuples()[i].get(attr) == rel.tuples()[j].get(attr),
                        "code/value equality must coincide"
                    );
                }
            }
        }
        // Rebuild from decoded cells → identical relation.
        let decoded: Vec<Vec<Value>> = (0..rel.len())
            .map(|i| rel.columns().iter().map(|c| c.decode(i)).collect())
            .collect();
        let rebuilt = Relation::from_rows(schema(), decoded).unwrap();
        prop_assert_eq!(rebuilt.len(), rel.len());
        for (a, b) in rel.iter().zip(rebuilt.iter()) {
            prop_assert_eq!(a.values(), b.values());
        }
        for (ca, cb) in rel.columns().iter().zip(rebuilt.columns()) {
            prop_assert_eq!(ca.codes(), cb.codes(), "insertion order fixes the codes");
        }
    }

    /// The code-keyed group-by agrees with a naive value-keyed grouping,
    /// and so does the code-keyed distinct projection.
    #[test]
    fn code_grouping_equals_value_grouping(rows in arb_rows()) {
        let rel = build(&rows);
        for attrs in [
            vec![],
            vec![dcd_relation::AttrId(0)],
            vec![dcd_relation::AttrId(2), dcd_relation::AttrId(0)],
            vec![dcd_relation::AttrId(0), dcd_relation::AttrId(1), dcd_relation::AttrId(2)],
        ] {
            let groups = ops::group_by(&rel, &attrs);
            let mut naive: std::collections::HashMap<Vec<Value>, Vec<usize>> =
                std::collections::HashMap::new();
            for (i, t) in rel.iter().enumerate() {
                naive.entry(t.project(&attrs)).or_default().push(i);
            }
            prop_assert_eq!(groups.len(), naive.len());
            for (key, members) in &naive {
                prop_assert_eq!(&groups[key], members, "attrs {:?}", attrs);
            }
            // Distinct projection: same set, first-seen order.
            let distinct = ops::project_distinct(&rel, &attrs);
            let mut seen = std::collections::HashSet::new();
            let naive_distinct: Vec<Vec<Value>> = rel
                .iter()
                .map(|t| t.project(&attrs))
                .filter(|k| seen.insert(k.clone()))
                .collect();
            prop_assert_eq!(distinct, naive_distinct);
        }
    }

    /// Rank-key sorting equals sorting by projected values (and is
    /// stable).
    #[test]
    fn sort_by_matches_value_sort(rows in arb_rows()) {
        let rel = build(&rows);
        let attrs = [dcd_relation::AttrId(2), dcd_relation::AttrId(0)];
        let sorted = ops::sort_by(&rel, &attrs);
        let mut expect: Vec<Tuple> = rel.tuples().to_vec();
        expect.sort_by_key(|t| t.project(&attrs));
        prop_assert_eq!(sorted.tuples(), expect.as_slice());
    }

    /// Semijoin ⊆ left input and equals the join-partnered subset.
    #[test]
    fn semijoin_is_join_support(rows in arb_rows(), rows2 in arb_rows()) {
        let left = build(&rows);
        let right = build(&rows2);
        let on = [dcd_relation::AttrId(0)];
        let semi = ops::semijoin(&left, &right, &on, &on).unwrap();
        let right_keys: std::collections::HashSet<Vec<Value>> =
            right.iter().map(|t| t.project(&on)).collect();
        let expect: Vec<TupleId> = left
            .iter()
            .filter(|t| right_keys.contains(&t.project(&on)))
            .map(|t| t.tid)
            .collect();
        let got: Vec<TupleId> = semi.iter().map(|t| t.tid).collect();
        prop_assert_eq!(got, expect);
    }
}
