//! Violation detection in vertically partitioned data.
//!
//! A CFD whose attributes fit one fragment is checked there with zero
//! shipment. Otherwise data must move (§V; the paper defers detailed
//! algorithms to a later report and points at semijoin-style reductions
//! \[25\] — §VII). We implement the natural coordinator strategy:
//!
//! 1. pick as coordinator the fragment holding the most of the CFD's
//!    attributes (fewest columns move),
//! 2. every other fragment owning needed attributes ships row-aligned
//!    `(tid, codes)` rows of those attributes — the same code wire the
//!    horizontal engines and the incremental delta protocol use,
//!    charged at 4 bytes/cell via
//!    [`ShipmentLedger::charge_codes`] (the tuple id rides as
//!    [`TID_CELLS`] cells; key *columns* never travel, the id aligns
//!    rows),
//! 3. the coordinator intersects the shipments by tuple id and
//!    validates on the gathered code rows through
//!    [`CodeLayout`]/[`ResolvedCfd`](dcd_cfd::ResolvedCfd) — decoding
//!    only violating group keys.
//!
//! With [`ShipMode::Filtered`], step 2 first applies the CFD's constant
//! patterns *locally*: a fragment owning pattern-constant attributes
//! ships only rows that could match some pattern — the semijoin-style
//! reduction, often cutting traffic dramatically.

use dcd_cfd::{Cfd, CodeLayout, CodeRow, PatternValue, ViolationReport, ViolationSet};
use dcd_core::{Detection, RunConfig};
use dcd_dist::{CostModel, ShipmentLedger, SiteClocks, SiteId, VerticalPartition, TID_CELLS};
use dcd_obs::RunObserver;
use dcd_relation::{AttrId, Dictionary, FxHashMap, Relation, RelationError, TupleId};
use std::sync::Arc;

/// Shipment strategy for cross-fragment CFDs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShipMode {
    /// Ship whole projected columns.
    Full,
    /// Apply the CFD's pattern constants locally before shipping
    /// (rows that match no pattern on the locally visible attributes
    /// cannot participate in a violation).
    Filtered,
}

/// Runs `VERTDETECT` over a vertical partition — the engine behind the
/// `DetectRequest` façade of the `distributed-cfd` root crate, with the
/// full [`Detection`] accounting (bytes, per-site clocks, the §III-B
/// paper cost) every other topology reports.
pub fn run_vertical(
    partition: &VerticalPartition,
    sigma: &[Cfd],
    mode: ShipMode,
    cfg: &RunConfig,
) -> Result<Detection, RelationError> {
    run_impl(partition, sigma, mode, cfg).map(|(d, _)| d)
}

fn run_impl(
    partition: &VerticalPartition,
    sigma: &[Cfd],
    mode: ShipMode,
    cfg: &RunConfig,
) -> Result<(Detection, usize), RelationError> {
    let cost: &CostModel = &cfg.cost;
    let n = partition.n_sites();
    let obs = RunObserver::new();
    let ledger = ShipmentLedger::observed(n, &obs.registry);
    let clocks = SiteClocks::new(n);
    let mut report = ViolationReport::default();
    let mut locally_checked = 0usize;
    let mut paper_cost = 0.0;

    for cfd in sigma {
        let mut local_secs = vec![0.0_f64; n];
        let needed: Vec<AttrId> = {
            let set = cfd.attrs();
            set.iter().collect()
        };
        // Locally checkable: all attributes in one fragment.
        if let Some(host) = partition.fragments().iter().position(|f| f.covers(&needed)) {
            let frag = &partition.fragments()[host];
            let local_cfd = rebase_cfd(cfd, &frag.data, &frag.attrs)?;
            let vs = dcd_cfd::detect(&frag.data, &local_cfd);
            let secs = cost.check_time(frag.data.len());
            let before = clocks.snapshot();
            clocks.advance(SiteId(host as u32), secs);
            obs.span_sites(&format!("local:{}", cfd.name()), &before, &clocks.snapshot());
            report.absorb(cfd.name(), vs);
            locally_checked += 1;
            // §III-B with zero shipment and one active site reduces to
            // the host's check time (`local_secs` is not involved —
            // this branch never reaches the shipment accounting below).
            paper_cost += secs;
            continue;
        }

        // Coordinator: fragment covering the most needed attributes.
        let coord = (0..n)
            .max_by_key(|&i| {
                let f = &partition.fragments()[i];
                (needed.iter().filter(|a| f.attrs.contains(a)).count(), n - i)
            })
            .expect("non-empty partition");
        let coord_site = SiteId(coord as u32);

        // Gather on the code wire: the coordinator's own columns stay
        // put; every other fragment ships row-aligned `(tid, codes)`
        // rows of the needed attributes it contributes. The tuple id
        // aligns rows across fragments, so key columns never travel.
        let coord_attrs: Vec<AttrId> = needed
            .iter()
            .copied()
            .filter(|a| partition.fragments()[coord].attrs.contains(a))
            .collect();
        let (mut dicts, mut acc) = code_shipment(partition, coord, &coord_attrs, cfd, mode);
        let mut acc_attrs = coord_attrs;
        let mut matrix = vec![vec![0usize; n]; n];
        let before = clocks.snapshot();
        for (i, frag) in partition.fragments().iter().enumerate() {
            if i == coord {
                continue;
            }
            let useful: Vec<AttrId> = needed
                .iter()
                .copied()
                .filter(|a| frag.attrs.contains(a) && !acc_attrs.contains(a))
                .collect();
            if useful.is_empty() {
                continue;
            }
            let (frag_dicts, shipped) = code_shipment(partition, i, &useful, cfd, mode);
            let secs = cost.scan_time(frag.data.len());
            clocks.advance(frag.site, secs);
            local_secs[i] += secs;
            ledger.charge_codes(
                coord_site,
                frag.site,
                shipped.len(),
                shipped.len() * (useful.len() + TID_CELLS),
            );
            matrix[coord][i] += shipped.len();
            // Intersect by tuple id: a row survives only if every
            // contributing fragment kept it (in filtered mode each
            // drops rows its visible constants rule out). Coordinator
            // row order is preserved — the merge is deterministic.
            let mut by_tid: FxHashMap<TupleId, Vec<u32>> = shipped.into_iter().collect();
            acc.retain_mut(|(tid, codes)| match by_tid.remove(tid) {
                Some(extra) => {
                    codes.extend(extra);
                    true
                }
                None => false,
            });
            acc_attrs.extend(useful);
            dicts.extend(frag_dicts);
        }
        clocks.transfer(&matrix, cost);
        obs.span_sites(&format!("gather:{}", cfd.name()), &before, &clocks.snapshot());
        // Coordinator validates on the gathered code rows, feeding the
        // run's kernel counters.
        let rows: Vec<CodeRow> =
            acc.into_iter().map(|(tid, codes)| (tid, codes.into_boxed_slice())).collect();
        let layout = CodeLayout::new(acc_attrs, dicts);
        let counters = dcd_cfd::KernelCounters::register(&obs.registry);
        let mut vs = ViolationSet::default();
        for simple in cfd.simplify() {
            let mut resolved = layout.resolve(&simple);
            resolved.set_counters(counters.clone());
            vs.merge(resolved.detect_among(&rows));
        }
        let secs = cost.check_time(rows.len());
        let before = clocks.snapshot();
        clocks.advance(coord_site, secs);
        obs.span_sites(&format!("validate:{}", cfd.name()), &before, &clocks.snapshot());
        local_secs[coord] += secs;
        report.absorb(cfd.name(), vs);
        paper_cost += cost.paper_cost(&matrix, &local_secs);
    }

    let d = Detection::collect("VERTDETECT", report, paper_cost, &ledger, &clocks, &obs);
    Ok((d, locally_checked))
}

/// A fragment's wire payload: the shipped attributes' dictionaries
/// plus the `(tid, codes)` rows.
type WirePayload = (Vec<Arc<Dictionary>>, Vec<(TupleId, Vec<u32>)>);

/// Fragment `idx`'s wire payload for `ship_attrs` (original-schema
/// ids): the attributes' dictionaries plus the `(tid, codes)` rows.
/// In filtered mode, rows that cannot match any pattern of `cfd`
/// judging by the locally visible constants are dropped before
/// shipping.
fn code_shipment(
    partition: &VerticalPartition,
    idx: usize,
    ship_attrs: &[AttrId],
    cfd: &Cfd,
    mode: ShipMode,
) -> WirePayload {
    let frag = &partition.fragments()[idx];
    let locals: Vec<AttrId> =
        ship_attrs.iter().map(|&a| frag.local_attr(a).expect("attr is in fragment")).collect();
    let dicts: Vec<Arc<Dictionary>> =
        locals.iter().map(|&l| frag.data.dictionary(l).clone()).collect();
    // Keep rows that could match ≥1 pattern on locally visible
    // constant positions (every row in Full mode).
    let visible: Vec<(usize, AttrId)> = match mode {
        ShipMode::Full => Vec::new(),
        ShipMode::Filtered => cfd
            .lhs()
            .iter()
            .enumerate()
            .filter_map(|(pi, &a)| frag.local_attr(a).map(|local| (pi, local)))
            .collect(),
    };
    let keeps = |t: &dcd_relation::Tuple| {
        visible.is_empty()
            || cfd.tableau().iter().any(|tp| {
                visible.iter().all(|&(pi, local)| match &tp.lhs[pi] {
                    PatternValue::Wild => true,
                    PatternValue::Const(c) => t.get(local) == c,
                })
            })
    };
    let cols: Vec<_> = locals.iter().map(|&l| frag.data.column(l).codes()).collect();
    let rows = frag
        .data
        .tuples()
        .iter()
        .enumerate()
        .filter(|(_, t)| keeps(t))
        .map(|(r, t)| (t.tid, cols.iter().map(|c| c.at(r)).collect()))
        .collect();
    (dicts, rows)
}

/// Re-expresses a CFD over a fragment/gathered schema by matching
/// attribute names (ids differ between the original schema and
/// projections).
fn rebase_cfd(cfd: &Cfd, local: &Relation, _frag_attrs: &[AttrId]) -> Result<Cfd, RelationError> {
    rebase_cfd_by_names(cfd, local)
}

fn rebase_cfd_by_names(cfd: &Cfd, local: &Relation) -> Result<Cfd, RelationError> {
    let orig = cfd.schema();
    let names = |ids: &[AttrId]| -> Result<Vec<&str>, RelationError> {
        ids.iter()
            .map(|&a| {
                let name = orig.attr_name(a);
                local.schema().require(name)?;
                Ok(name)
            })
            .collect()
    };
    let lhs = names(cfd.lhs())?;
    let rhs = names(cfd.rhs())?;
    Cfd::with_names(cfd.name(), local.schema().clone(), &lhs, &rhs, cfd.tableau().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Test-local result shape: the engine's [`Detection`] fields plus
    /// how many CFDs were checked without shipment.
    struct VerticalDetection {
        violations: ViolationReport,
        shipped_tuples: usize,
        response_time: f64,
        locally_checked: usize,
    }

    /// The tests drive the engine (`run_impl`) directly, which also
    /// reports how many CFDs were checked locally.
    fn vdetect(
        p: &VerticalPartition,
        sigma: &[Cfd],
        mode: ShipMode,
    ) -> Result<VerticalDetection, RelationError> {
        let (d, locally_checked) = run_impl(p, sigma, mode, &RunConfig::default())?;
        Ok(VerticalDetection {
            violations: d.violations,
            shipped_tuples: d.shipped_tuples,
            response_time: d.response_time,
            locally_checked,
        })
    }

    use dcd_cfd::parse_cfd;
    use dcd_relation::{vals, Schema, ValueType};

    fn emp() -> Relation {
        let schema = Schema::builder("emp")
            .attr("id", ValueType::Int)
            .attr("title", ValueType::Str)
            .attr("CC", ValueType::Int)
            .attr("zip", ValueType::Str)
            .attr("street", ValueType::Str)
            .attr("salary", ValueType::Str)
            .key(&["id"])
            .build()
            .unwrap();
        Relation::from_rows(
            schema,
            vec![
                vals![1, "MTS", 44, "z1", "a", "80k"],
                vals![2, "MTS", 44, "z1", "b", "80k"], // street conflict with t1
                vals![3, "VP", 44, "z2", "c", "200k"],
                vals![4, "MTS", 44, "z2", "c", "90k"], // salary conflict with t1/t2
                vals![5, "MTS", 31, "z9", "d", "75k"],
            ],
        )
        .unwrap()
    }

    fn partition(rel: &Relation) -> VerticalPartition {
        VerticalPartition::by_attribute_groups(
            rel,
            &[&["title", "zip", "street"], &["CC"], &["salary"]],
        )
        .unwrap()
    }

    #[test]
    fn cross_fragment_cfd_matches_centralized() {
        let rel = emp();
        let p = partition(&rel);
        let cfd = parse_cfd(rel.schema(), "phi1", "([CC=44, zip] -> [street])").unwrap();
        let global = dcd_cfd::detect(&rel, &cfd);
        assert!(!global.tids.is_empty());
        for mode in [ShipMode::Full, ShipMode::Filtered] {
            let out = vdetect(&p, std::slice::from_ref(&cfd), mode).unwrap();
            let (_, vs) = &out.violations.per_cfd[0];
            assert_eq!(vs.tids, global.tids, "{mode:?}");
            assert!(out.shipped_tuples > 0, "{mode:?} must ship");
            assert_eq!(out.locally_checked, 0);
        }
    }

    #[test]
    fn local_cfd_ships_nothing() {
        let rel = emp();
        let p = partition(&rel);
        // zip → street lives entirely in fragment 0.
        let cfd = parse_cfd(rel.schema(), "local", "([zip] -> [street])").unwrap();
        let global = dcd_cfd::detect(&rel, &cfd);
        let out = vdetect(&p, std::slice::from_ref(&cfd), ShipMode::Full).unwrap();
        assert_eq!(out.shipped_tuples, 0);
        assert_eq!(out.locally_checked, 1);
        let (_, vs) = &out.violations.per_cfd[0];
        assert_eq!(vs.tids, global.tids);
    }

    #[test]
    fn filtered_mode_ships_less_with_selective_patterns() {
        let rel = emp();
        let p = partition(&rel);
        // CC=31 matches one tuple only; the CC fragment can pre-filter.
        let cfd = parse_cfd(rel.schema(), "phi", "([CC=31, zip] -> [street])").unwrap();
        let full = vdetect(&p, std::slice::from_ref(&cfd), ShipMode::Full).unwrap();
        let filt = vdetect(&p, std::slice::from_ref(&cfd), ShipMode::Filtered).unwrap();
        assert_eq!(
            full.violations.all_tids(),
            filt.violations.all_tids(),
            "filtering must not change results"
        );
        assert!(
            filt.shipped_tuples < full.shipped_tuples,
            "filtered {} !< full {}",
            filt.shipped_tuples,
            full.shipped_tuples
        );
    }

    /// Pins the code-wire accounting of the gather. Before the port
    /// the CC fragment shipped `π_{id, CC}(D1)` as value rows — 5
    /// tuples × 2 value cells, value-sized bytes, the key column
    /// riding along to join on. On the code wire the key column stays
    /// home (the tuple id aligns rows as [`TID_CELLS`] cells), so the
    /// same gather is `rows × (1 + TID_CELLS)` code cells at
    /// [`CODE_BYTES`](dcd_dist::CODE_BYTES) each, and filtered mode
    /// drops the CC≠44 row before it ever travels.
    #[test]
    fn code_wire_accounting_is_pinned() {
        use dcd_dist::CODE_BYTES;
        let rel = emp();
        let p = partition(&rel);
        let cfd = parse_cfd(rel.schema(), "phi1", "([CC=44, zip] -> [street])").unwrap();
        let (full, _) =
            run_impl(&p, std::slice::from_ref(&cfd), ShipMode::Full, &RunConfig::default())
                .unwrap();
        assert_eq!(full.shipped_tuples, 5);
        assert_eq!(full.shipped_cells, 5 * (1 + TID_CELLS));
        assert_eq!(full.shipped_bytes, full.shipped_cells * CODE_BYTES);
        let (filt, _) =
            run_impl(&p, std::slice::from_ref(&cfd), ShipMode::Filtered, &RunConfig::default())
                .unwrap();
        assert_eq!(filt.shipped_tuples, 4, "CC≠44 row filtered before shipping");
        assert_eq!(filt.shipped_cells, 4 * (1 + TID_CELLS));
        assert_eq!(filt.shipped_bytes, filt.shipped_cells * CODE_BYTES);
    }

    #[test]
    fn three_fragment_gather() {
        let rel = emp();
        let p = partition(&rel);
        // CC, title → salary touches all three fragments.
        let cfd = parse_cfd(rel.schema(), "phi2", "([CC, title] -> [salary])").unwrap();
        let global = dcd_cfd::detect(&rel, &cfd);
        assert!(!global.tids.is_empty());
        let out = vdetect(&p, std::slice::from_ref(&cfd), ShipMode::Full).unwrap();
        let (_, vs) = &out.violations.per_cfd[0];
        assert_eq!(vs.tids, global.tids);
        assert!(out.response_time > 0.0);
    }

    #[test]
    fn multiple_cfds_mixed_local_and_remote() {
        let rel = emp();
        let p = partition(&rel);
        let sigma = vec![
            parse_cfd(rel.schema(), "local", "([zip] -> [street])").unwrap(),
            parse_cfd(rel.schema(), "remote", "([CC, title] -> [salary])").unwrap(),
        ];
        let global = dcd_cfd::detect_set(&rel, &sigma);
        let out = vdetect(&p, &sigma, ShipMode::Filtered).unwrap();
        assert_eq!(out.locally_checked, 1);
        assert_eq!(out.violations.all_tids(), global.all_tids());
    }
}
