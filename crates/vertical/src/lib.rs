//! # dcd-vertical
//!
//! CFD checking in vertically partitioned data — §V of the ICDE 2010
//! paper.
//!
//! A CFD can be checked locally at a site only if all its attributes live
//! in that site's fragment; whether *every* CFD of Σ can be checked
//! locally (possibly via other CFDs implied by Σ) is exactly dependency
//! preservation (Proposition 7). This crate provides:
//!
//! * [`preservation`] — the preservation test `Γ ⊨ Σ`, implemented as a
//!   fragment-restricted two-tuple chase (the classical Beeri–Honeyman
//!   algorithm for FDs, generalized to CFD patterns),
//! * [`refine`] — the minimum refinement problem (Theorem 8: NP-hard):
//!   an exact breadth-first search over augmentation sizes and a greedy
//!   coverage heuristic,
//! * [`detect`] — violation detection in vertical fragments when
//!   shipment *is* needed (the paper defers its algorithms to a later
//!   report and points at semijoin-style reductions; we implement a
//!   coordinator join with optional constant-based pre-filtering and
//!   account all traffic through `dcd-dist`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod detect;
pub mod preservation;
pub mod refine;

pub use detect::{run_vertical, ShipMode};
pub use preservation::{is_preserved, locally_checkable_at, unpreserved};
pub use refine::{refine_exact, refine_greedy, Augmentation};
