//! Dependency preservation for vertical partitions (Proposition 7).
//!
//! Let `(R1, …, Rn)` be a vertical partition of `R` and Σ a set of CFDs.
//! `Γi` is the set of CFDs implied by Σ whose attributes all lie in
//! `attr(Ri)`; the partition is *dependency preserving* iff
//! `Γ = ⋃ Γi ⊨ Σ`. By Proposition 7 this holds iff every CFD of Σ can be
//! checked locally on every instance.
//!
//! `Γ` is infinite, so the test cannot enumerate it. Instead we run the
//! classical restricted-closure algorithm of Beeri–Honeyman, generalized
//! from FDs to CFDs: maintain, for two symbolic tuples constrained by
//! φ's premise, the per-attribute knowledge (pair equality + constant
//! bindings), and repeatedly run a full two-tuple chase of Σ *seeded with
//! only one fragment's knowledge at a time*, copying back only facts
//! about that fragment's attributes. Every derivation step of such a
//! round is a CFD implied by Σ whose attributes fit the fragment — i.e.
//! an element of `Γi` — so the fixpoint decides `Γ ⊨ φ`. For FDs this
//! reduces exactly to `Z := Z ∪ (closure_Σ(Z ∩ Ri) ∩ Ri)`.
//!
//! Completeness matches the chase's: exact for the unbounded `Int`/`Str`
//! domains this workspace models (see `dcd-cfd::implication`).

use dcd_cfd::implication::{ChaseOutcome, ChaseState};
use dcd_cfd::{Cfd, NormalCfd, PatternValue};
use dcd_relation::{AttrId, Value};

/// Per-attribute knowledge about the two symbolic premise tuples.
#[derive(Debug, Clone, Default, PartialEq)]
struct CellKnowledge {
    /// `t1[B] = t2[B]` is known.
    eq: bool,
    /// Constant bound to `t1[B]`, if known.
    c1: Option<Value>,
    /// Constant bound to `t2[B]`, if known.
    c2: Option<Value>,
}

/// Decides whether the vertical partition given by `groups` (attribute
/// id lists, one per fragment) preserves Σ.
pub fn is_preserved(arity: usize, groups: &[Vec<AttrId>], sigma: &[Cfd]) -> bool {
    unpreserved(arity, groups, sigma).is_empty()
}

/// The normalized pieces of Σ that are *not* implied by the fragment-
/// local CFD sets Γ (empty iff the partition is dependency preserving).
pub fn unpreserved(arity: usize, groups: &[Vec<AttrId>], sigma: &[Cfd]) -> Vec<NormalCfd> {
    let normalized: Vec<NormalCfd> = sigma.iter().flat_map(Cfd::normalize).collect();
    normalized
        .iter()
        .filter(|phi| !gamma_implies(arity, groups, &normalized, phi))
        .cloned()
        .collect()
}

/// The site index whose fragment covers all attributes of `cfd`
/// (syntactic local checkability), if any.
pub fn locally_checkable_at(cfd: &Cfd, groups: &[Vec<AttrId>]) -> Option<usize> {
    let attrs = cfd.attrs();
    groups.iter().position(|g| attrs.iter().all(|a| g.contains(&a)))
}

/// `Γ ⊨ φ` via the fragment-restricted chase described in the module
/// docs.
pub fn gamma_implies(
    arity: usize,
    groups: &[Vec<AttrId>],
    sigma: &[NormalCfd],
    phi: &NormalCfd,
) -> bool {
    // Seed knowledge with φ's premise: t1[X] = t2[X] ≍ tp[X].
    let mut know: Vec<CellKnowledge> = vec![CellKnowledge::default(); arity];
    for (&b, p) in phi.lhs.iter().zip(&phi.pattern.lhs) {
        know[b.index()].eq = true;
        if let PatternValue::Const(c) = p {
            know[b.index()].c1 = Some(c.clone());
            know[b.index()].c2 = Some(c.clone());
        }
    }

    let mut changed = true;
    while changed {
        changed = false;
        for group in groups {
            // One fragment-restricted chase round: seed with this
            // fragment's knowledge only.
            let mut st = ChaseState::new(arity);
            for &b in group {
                let cell = &know[b.index()];
                if cell.eq {
                    st.assume_pair_eq(b);
                }
                if let Some(c) = &cell.c1 {
                    st.assume_const(0, b, c);
                }
                if let Some(c) = &cell.c2 {
                    st.assume_const(1, b, c);
                }
            }
            if st.chase(sigma) == ChaseOutcome::Contradiction {
                // The premise is unsatisfiable given Γi: vacuously implied.
                return true;
            }
            // Copy back facts about this fragment's attributes only.
            for &b in group {
                let cell = &mut know[b.index()];
                if !cell.eq && st.pair_equal(b) {
                    cell.eq = true;
                    changed = true;
                }
                for tuple in 0..2usize {
                    let binding = st.const_binding(tuple, b);
                    let target = if tuple == 0 { &mut cell.c1 } else { &mut cell.c2 };
                    match (&*target, binding) {
                        (None, Some(c)) => {
                            *target = Some(c);
                            changed = true;
                        }
                        (Some(old), Some(c)) if *old != c => {
                            // Conflicting constants forced on one cell:
                            // premise unsatisfiable — vacuous.
                            return true;
                        }
                        _ => {}
                    }
                }
            }
        }
    }

    // Conclusion: t1[A] = t2[A] ≍ tp[A].
    let cell = &know[phi.rhs.index()];
    match &phi.pattern.rhs {
        PatternValue::Wild => cell.eq || (cell.c1.is_some() && cell.c1 == cell.c2),
        PatternValue::Const(c) => {
            let both = cell.c1.as_ref() == Some(c) && cell.c2.as_ref() == Some(c);
            both
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_cfd::parse_cfd;
    use dcd_relation::{Schema, ValueType};
    use std::sync::Arc;

    /// EMP-like schema: id(0), name(1), title(2), CC(3), AC(4), phn(5),
    /// street(6), city(7), zip(8), salary(9).
    fn emp() -> Arc<Schema> {
        Schema::builder("emp")
            .attr("id", ValueType::Int)
            .attr("name", ValueType::Str)
            .attr("title", ValueType::Str)
            .attr("CC", ValueType::Int)
            .attr("AC", ValueType::Int)
            .attr("phn", ValueType::Int)
            .attr("street", ValueType::Str)
            .attr("city", ValueType::Str)
            .attr("zip", ValueType::Str)
            .attr("salary", ValueType::Str)
            .key(&["id"])
            .build()
            .unwrap()
    }

    fn ids(s: &Schema, names: &[&str]) -> Vec<AttrId> {
        s.require_all(names).unwrap()
    }

    /// The Example 1 vertical partition: DV1 = name/title/address,
    /// DV2 = phone, DV3 = salary (id everywhere).
    fn example1_groups(s: &Schema) -> Vec<Vec<AttrId>> {
        vec![
            ids(s, &["id", "name", "title", "street", "city", "zip"]),
            ids(s, &["id", "CC", "AC", "phn"]),
            ids(s, &["id", "salary"]),
        ]
    }

    fn sigma0(s: &Arc<Schema>) -> Vec<Cfd> {
        vec![
            parse_cfd(s, "phi1a", "([CC=44, zip] -> [street])").unwrap(),
            parse_cfd(s, "phi1b", "([CC=31, zip] -> [street])").unwrap(),
            parse_cfd(s, "phi2", "([CC, title] -> [salary])").unwrap(),
            parse_cfd(s, "phi3a", "([CC=44, AC=131] -> [city=EDI])").unwrap(),
            parse_cfd(s, "phi3b", "([CC=1, AC=908] -> [city=MH])").unwrap(),
        ]
    }

    #[test]
    fn example1_partition_is_not_preserving() {
        let s = emp();
        let groups = example1_groups(&s);
        let sigma = sigma0(&s);
        assert!(!is_preserved(s.arity(), &groups, &sigma));
        // Every CFD of Σ0 spans fragments, so every normalized piece fails.
        let bad = unpreserved(s.arity(), &groups, &sigma);
        assert_eq!(bad.len(), 5);
    }

    /// Example 7: adding CC, salary to DV1 and city to DV2 preserves Σ0.
    #[test]
    fn example7_refinement_is_preserving() {
        let s = emp();
        let mut groups = example1_groups(&s);
        groups[0].extend(ids(&s, &["CC", "salary"]));
        groups[1].extend(ids(&s, &["city"]));
        let sigma = sigma0(&s);
        assert!(is_preserved(s.arity(), &groups, &sigma));
    }

    #[test]
    fn covering_fragment_preserves_trivially() {
        let s = emp();
        let all: Vec<AttrId> = s.attr_ids().collect();
        let sigma = sigma0(&s);
        assert!(is_preserved(s.arity(), &[all], &sigma));
    }

    #[test]
    fn locally_checkable_at_finds_covering_fragment() {
        let s = emp();
        let mut groups = example1_groups(&s);
        groups[0].extend(ids(&s, &["CC"]));
        let cfd = parse_cfd(&s, "c", "([CC=44, zip] -> [street])").unwrap();
        assert_eq!(locally_checkable_at(&cfd, &groups), Some(0));
        let cfd2 = parse_cfd(&s, "c2", "([CC, title] -> [salary])").unwrap();
        assert_eq!(locally_checkable_at(&cfd2, &groups), None);
    }

    /// Beeri–Honeyman's classic subtlety: preservation can hold even
    /// when no single fragment covers an FD, via implied FDs. Schema
    /// r(a,b,c); Σ = {a→b, b→c, c→a}; fragments {a,b} and {b,c} … then
    /// c→a is NOT directly covered. Γ1 ∋ a→b, b→a? (b→a is implied:
    /// b→c→a). Γ2 ∋ b→c, c→b. Then c→a follows from c→b (Γ2) and
    /// b→a (Γ1).
    #[test]
    fn preservation_through_implied_fds() {
        let s = Schema::builder("r")
            .attr("a", ValueType::Int)
            .attr("b", ValueType::Int)
            .attr("c", ValueType::Int)
            .build()
            .unwrap();
        let sigma = vec![
            parse_cfd(&s, "f1", "([a] -> [b])").unwrap(),
            parse_cfd(&s, "f2", "([b] -> [c])").unwrap(),
            parse_cfd(&s, "f3", "([c] -> [a])").unwrap(),
        ];
        let groups = vec![ids(&s, &["a", "b"]), ids(&s, &["b", "c"])];
        assert!(is_preserved(s.arity(), &groups, &sigma));
        // Dropping f3 from Σ breaks the cycle: b→a is no longer implied,
        // and a partition splitting {a,c} across fragments cannot check
        // c→a… but c→a is also gone from Σ. Instead check that with
        // Σ' = {a→b, b→c} and fragments {a,c}, {b} the FD a→b fails.
        let sigma2 = vec![
            parse_cfd(&s, "f1", "([a] -> [b])").unwrap(),
            parse_cfd(&s, "f2", "([b] -> [c])").unwrap(),
        ];
        let groups2 = vec![ids(&s, &["a", "c"]), ids(&s, &["b"])];
        assert!(!is_preserved(s.arity(), &groups2, &sigma2));
    }

    /// Constant propagation across fragments: Γ can transport constant
    /// bindings through shared attributes.
    #[test]
    fn constant_cfds_propagate_through_fragments() {
        let s = Schema::builder("r")
            .attr("a", ValueType::Int)
            .attr("b", ValueType::Int)
            .attr("c", ValueType::Int)
            .build()
            .unwrap();
        // a=1 → b=2 (fits fragment {a,b}); b=2 → c=3 (fits {b,c});
        // composite a=1 → c=3 spans both but is implied by Γ.
        let sigma = vec![
            parse_cfd(&s, "r1", "([a=1] -> [b=2])").unwrap(),
            parse_cfd(&s, "r2", "([b=2] -> [c=3])").unwrap(),
            parse_cfd(&s, "r3", "([a=1] -> [c=3])").unwrap(),
        ];
        let groups = vec![ids(&s, &["a", "b"]), ids(&s, &["b", "c"])];
        assert!(is_preserved(s.arity(), &groups, &sigma));
        // Without the bridge attribute b in the second fragment it fails.
        let groups2 = vec![ids(&s, &["a", "b"]), ids(&s, &["c"])];
        assert!(!is_preserved(s.arity(), &groups2, &sigma));
    }

    #[test]
    fn vacuous_premise_is_preserved() {
        let s = Schema::builder("r")
            .attr("a", ValueType::Int)
            .attr("b", ValueType::Int)
            .attr("c", ValueType::Int)
            .build()
            .unwrap();
        // Γ1 forces b=1 and b=2 for a=5-pairs → contradiction → any φ
        // with premise a=5 is vacuously implied.
        let sigma = vec![
            parse_cfd(&s, "r1", "([a=5] -> [b=1])").unwrap(),
            parse_cfd(&s, "r2", "([a=5] -> [b=2])").unwrap(),
            parse_cfd(&s, "phi", "([a=5] -> [c])").unwrap(),
        ];
        let groups = vec![ids(&s, &["a", "b"]), ids(&s, &["c"])];
        assert!(is_preserved(s.arity(), &groups, &sigma));
    }
}
