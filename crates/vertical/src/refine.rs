//! The minimum refinement problem (§V, Theorem 8).
//!
//! Given Σ and a vertical partition, find the smallest augmentation
//! `Z = (Z1, …, Zn)` — attributes added to fragments — such that the
//! refined partition is dependency preserving w.r.t. Σ. Theorem 8 shows
//! NP-hardness (by reduction from hitting set), so this module provides
//! both an exact search usable on small schemas and a greedy heuristic.

use crate::preservation::is_preserved;
use dcd_cfd::{Cfd, NormalCfd};
use dcd_relation::AttrId;

/// An augmentation: for each fragment, the attributes to add. The *size*
/// is the total number of added attributes (the quantity minimized).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Augmentation {
    /// `adds[i]` = attributes added to fragment `i`.
    pub adds: Vec<Vec<AttrId>>,
}

impl Augmentation {
    /// The empty augmentation over `n` fragments.
    pub fn empty(n: usize) -> Self {
        Augmentation { adds: vec![Vec::new(); n] }
    }

    /// Total number of attributes added.
    pub fn size(&self) -> usize {
        self.adds.iter().map(Vec::len).sum()
    }

    /// Applies the augmentation to attribute groups.
    pub fn apply(&self, groups: &[Vec<AttrId>]) -> Vec<Vec<AttrId>> {
        groups
            .iter()
            .zip(&self.adds)
            .map(|(g, add)| {
                let mut g = g.clone();
                for &a in add {
                    if !g.contains(&a) {
                        g.push(a);
                    }
                }
                g
            })
            .collect()
    }
}

/// All candidate (fragment, attribute) pairs: attributes a CFD of Σ
/// mentions that the fragment lacks. Pairs outside this set can never
/// help preservation.
fn candidate_pairs(arity: usize, groups: &[Vec<AttrId>], sigma: &[Cfd]) -> Vec<(usize, AttrId)> {
    let mut mentioned = dcd_cfd::AttrSet::empty(arity);
    for cfd in sigma {
        mentioned.union_with(&cfd.attrs());
    }
    let mut pairs = Vec::new();
    for (i, g) in groups.iter().enumerate() {
        for a in mentioned.iter() {
            if !g.contains(&a) {
                pairs.push((i, a));
            }
        }
    }
    pairs
}

/// Exact minimum refinement by breadth-first search over augmentation
/// sizes: tries all candidate-pair combinations of size 0, 1, 2, … up to
/// `max_size`. Exponential (Theorem 8 says it must be); `None` if no
/// preserving augmentation of size ≤ `max_size` exists.
pub fn refine_exact(
    arity: usize,
    groups: &[Vec<AttrId>],
    sigma: &[Cfd],
    max_size: usize,
) -> Option<Augmentation> {
    if is_preserved(arity, groups, sigma) {
        return Some(Augmentation::empty(groups.len()));
    }
    let pairs = candidate_pairs(arity, groups, sigma);
    for size in 1..=max_size.min(pairs.len()) {
        let mut found: Option<Augmentation> = None;
        for_each_combination(pairs.len(), size, &mut |combo| {
            if found.is_some() {
                return;
            }
            let mut aug = Augmentation::empty(groups.len());
            for &ci in combo {
                let (frag, attr) = pairs[ci];
                aug.adds[frag].push(attr);
            }
            if is_preserved(arity, &aug.apply(groups), sigma) {
                found = Some(aug);
            }
        });
        if found.is_some() {
            return found;
        }
    }
    None
}

/// Calls `f` with every size-`k` combination of `0..n` (ascending index
/// vectors, lexicographic order).
fn for_each_combination(n: usize, k: usize, f: &mut impl FnMut(&[usize])) {
    if k > n {
        return;
    }
    let mut combo: Vec<usize> = (0..k).collect();
    loop {
        f(&combo);
        // Advance to the next combination.
        let mut i = k;
        while i > 0 {
            i -= 1;
            if combo[i] != i + n - k {
                combo[i] += 1;
                for j in i + 1..k {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
            if i == 0 {
                return;
            }
        }
    }
}

/// Greedy refinement: repeatedly take the cheapest "repair" — for some
/// unpreserved CFD φ, add all of φ's missing attributes to the fragment
/// where fewest are missing — until the partition is preserving.
/// Always terminates (in the worst case one fragment ends up covering
/// every CFD). Size is an upper bound on the optimum; tests compare it
/// against [`refine_exact`] on small instances.
pub fn refine_greedy(arity: usize, groups: &[Vec<AttrId>], sigma: &[Cfd]) -> Augmentation {
    let mut current = groups.to_vec();
    let mut aug = Augmentation::empty(groups.len());
    loop {
        let bad = crate::preservation::unpreserved(arity, &current, sigma);
        if bad.is_empty() {
            return aug;
        }
        // Cheapest repair across all unpreserved pieces.
        let mut best: Option<(usize, usize, Vec<AttrId>)> = None; // (cost, frag, attrs)
        for phi in &bad {
            for (i, g) in current.iter().enumerate() {
                let missing: Vec<AttrId> =
                    attrs_of(phi).into_iter().filter(|a| !g.contains(a)).collect();
                let cost = missing.len();
                if cost == 0 {
                    continue; // covered syntactically yet still unpreserved
                              // cannot happen: coverage ⇒ φ ∈ Γi
                }
                if best.as_ref().is_none_or(|(bc, _, _)| cost < *bc) {
                    best = Some((cost, i, missing));
                }
            }
        }
        let (_, frag, attrs) = best.expect("unpreserved CFD must be missing attributes somewhere");
        for a in attrs {
            current[frag].push(a);
            aug.adds[frag].push(a);
        }
    }
}

fn attrs_of(phi: &NormalCfd) -> Vec<AttrId> {
    let mut v = phi.lhs.clone();
    if !v.contains(&phi.rhs) {
        v.push(phi.rhs);
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_cfd::parse_cfd;
    use dcd_relation::{Schema, ValueType};
    use std::sync::Arc;

    fn emp() -> Arc<Schema> {
        Schema::builder("emp")
            .attr("id", ValueType::Int)
            .attr("name", ValueType::Str)
            .attr("title", ValueType::Str)
            .attr("CC", ValueType::Int)
            .attr("AC", ValueType::Int)
            .attr("phn", ValueType::Int)
            .attr("street", ValueType::Str)
            .attr("city", ValueType::Str)
            .attr("zip", ValueType::Str)
            .attr("salary", ValueType::Str)
            .key(&["id"])
            .build()
            .unwrap()
    }

    fn ids(s: &Schema, names: &[&str]) -> Vec<AttrId> {
        s.require_all(names).unwrap()
    }

    fn example1_groups(s: &Schema) -> Vec<Vec<AttrId>> {
        vec![
            ids(s, &["id", "name", "title", "street", "city", "zip"]),
            ids(s, &["id", "CC", "AC", "phn"]),
            ids(s, &["id", "salary"]),
        ]
    }

    fn sigma0(s: &Arc<Schema>) -> Vec<Cfd> {
        vec![
            parse_cfd(s, "phi1a", "([CC=44, zip] -> [street])").unwrap(),
            parse_cfd(s, "phi1b", "([CC=31, zip] -> [street])").unwrap(),
            parse_cfd(s, "phi2", "([CC, title] -> [salary])").unwrap(),
            parse_cfd(s, "phi3a", "([CC=44, AC=131] -> [city=EDI])").unwrap(),
            parse_cfd(s, "phi3b", "([CC=1, AC=908] -> [city=MH])").unwrap(),
        ]
    }

    /// Example 7: the minimum augmentation for Σ0 has size 3
    /// (CC, salary → DV1; city → DV2).
    #[test]
    fn example7_minimum_is_three() {
        let s = emp();
        let groups = example1_groups(&s);
        let sigma = sigma0(&s);
        let exact = refine_exact(s.arity(), &groups, &sigma, 3).expect("size-3 solution exists");
        assert_eq!(exact.size(), 3);
        assert!(is_preserved(s.arity(), &exact.apply(&groups), &sigma));
        // No size-2 solution.
        assert!(refine_exact(s.arity(), &groups, &sigma, 2).is_none());
    }

    #[test]
    fn greedy_matches_exact_on_example7() {
        let s = emp();
        let groups = example1_groups(&s);
        let sigma = sigma0(&s);
        let greedy = refine_greedy(s.arity(), &groups, &sigma);
        assert!(is_preserved(s.arity(), &greedy.apply(&groups), &sigma));
        assert!(greedy.size() >= 3, "greedy cannot beat the optimum");
        // On this instance the cheapest-repair order actually finds 3.
        assert_eq!(greedy.size(), 3, "greedy should find the optimum here");
    }

    #[test]
    fn preserved_partition_needs_empty_augmentation() {
        let s = emp();
        let all: Vec<AttrId> = s.attr_ids().collect();
        let sigma = sigma0(&s);
        let aug = refine_exact(s.arity(), std::slice::from_ref(&all), &sigma, 2).unwrap();
        assert_eq!(aug.size(), 0);
        let g = refine_greedy(s.arity(), &[all], &sigma);
        assert_eq!(g.size(), 0);
    }

    #[test]
    fn exact_respects_max_size() {
        let s = emp();
        let groups = example1_groups(&s);
        let sigma = sigma0(&s);
        assert!(refine_exact(s.arity(), &groups, &sigma, 1).is_none());
    }

    #[test]
    fn augmentation_apply_dedupes() {
        let mut aug = Augmentation::empty(1);
        aug.adds[0] = vec![AttrId(1), AttrId(2)];
        let groups = vec![vec![AttrId(0), AttrId(1)]];
        let out = aug.apply(&groups);
        assert_eq!(out[0], vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(aug.size(), 2);
    }

    /// Greedy on a chain schema where sharing one attribute suffices.
    #[test]
    fn greedy_uses_implication_not_just_coverage() {
        let s = Schema::builder("r")
            .attr("a", ValueType::Int)
            .attr("b", ValueType::Int)
            .attr("c", ValueType::Int)
            .build()
            .unwrap();
        let sigma = vec![
            parse_cfd(&s, "f1", "([a] -> [b])").unwrap(),
            parse_cfd(&s, "f2", "([b] -> [c])").unwrap(),
        ];
        // Fragments {a}, {b}, {c}: both FDs span fragments.
        let groups = vec![vec![AttrId(0)], vec![AttrId(1)], vec![AttrId(2)]];
        let exact = refine_exact(s.arity(), &groups, &sigma, 2).unwrap();
        assert_eq!(exact.size(), 2);
        let greedy = refine_greedy(s.arity(), &groups, &sigma);
        assert!(is_preserved(s.arity(), &greedy.apply(&groups), &sigma));
        assert_eq!(greedy.size(), 2);
    }
}
