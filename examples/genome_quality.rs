//! Multi-CFD data quality checking on genome cross-references (XREF).
//!
//! The scenario of the paper's Exp-5: two CFDs with containment-related
//! LHSs over an Ensembl-style cross-reference relation, fragmented by
//! reference type across 7 sites. Compares SEQDETECT (one CFD at a
//! time, pipelined) against CLUSTDETECT (cluster the CFDs, ship each
//! tuple once per cluster).
//!
//! ```text
//! cargo run --release --example genome_quality
//! ```

use distributed_cfd::datagen::inject_errors;
use distributed_cfd::datagen::xref::{xref_main_cfd, xref_second_cfd, XrefConfig};
use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = XrefConfig { n_tuples: 60_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, e1) = inject_errors(&clean, "source", 0.02, 3);
    let (dirty, e2) = inject_errors(&dirty, "db_release", 0.02, 4);
    println!(
        "XREF: {} cross-references ({} bad sources, {} bad releases), 7 sites by reference type",
        dirty.len(),
        e1,
        e2
    );
    let partition = HorizontalPartition::by_attribute(&dirty, "info_type", 7)?;
    for f in partition.fragments() {
        println!("  {}: {} tuples", f.site, f.data.len());
    }

    let sigma = vec![
        xref_main_cfd(dirty.schema(), &config.organisms).to_cfd(),
        xref_second_cfd(dirty.schema(), &config.organisms),
    ];
    println!("\nrules:");
    for cfd in &sigma {
        println!("  {cfd}");
    }

    let cfg = RunConfig::default();
    println!();
    let request = |alg: Algorithm| {
        DetectRequest::over(partition.clone())
            .cfds(sigma.iter().cloned())
            .algorithm(alg)
            .config(cfg)
            .run()
    };
    let seq = request(Algorithm::seq_detect())?;
    let clust = request(Algorithm::clust_detect())?;
    for d in [&seq, &clust] {
        println!("{}", d.summary());
    }
    assert_eq!(seq.violations.all_tids(), clust.violations.all_tids());
    let saved = 100.0 * (1.0 - clust.shipped_tuples as f64 / seq.shipped_tuples as f64);
    println!("\nCLUSTDETECT shipped {saved:.0}% fewer tuples than SEQDETECT ✓");

    // Per-CFD violation patterns (Vioπ): what a data steward would read.
    println!("\nVioπ sizes per rule (distinct offending LHS patterns):");
    for (name, vs) in &clust.violations.per_cfd {
        println!("  {:<14} {:>6} patterns / {:>6} tuples", name, vs.patterns.len(), vs.tids.len());
    }
    Ok(())
}
