//! Horizontal-partition detection at workload scale: the CUST dataset.
//!
//! Generates a CUST instance (sales records with controlled errors),
//! distributes it uniformly over 8 sites, and compares the three
//! single-CFD algorithms of §IV-B plus the frequent-pattern-mining
//! optimization on an FD — the scenario of the paper's Exp-1 and Exp-4.
//!
//! ```text
//! cargo run --release --example horizontal_detection
//! ```

use distributed_cfd::datagen::cust::{cust_main_cfd, CustConfig};
use distributed_cfd::datagen::inject_errors;
use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CustConfig { n_tuples: 40_000, ..CustConfig::default() };
    let clean = config.generate();
    let (dirty, n_errors) = inject_errors(&clean, "street", 0.02, 7);
    println!(
        "CUST: {} tuples, {} corrupted streets, distributed over 8 sites",
        dirty.len(),
        n_errors
    );
    let partition = HorizontalPartition::round_robin(&dirty, 8)?;
    let cfd = cust_main_cfd(dirty.schema(), &config, 255);
    println!("rule: {cfd}\n");

    let cfg = RunConfig::default();
    let baseline = detect_simple(&dirty, &cfd);
    for alg in [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT] {
        let d = DetectRequest::over(partition.clone())
            .cfd(cfd.to_cfd())
            .algorithm(alg)
            .config(cfg)
            .run()?;
        println!("{}", d.summary());
        // Sanity: every algorithm agrees with the centralized baseline.
        assert_eq!(d.violations.all_tids(), baseline.tids);
    }
    println!("\nall distributed results equal the centralized baseline ✓");

    // The mining optimization on a wildcard-only FD (Exp-4's idea).
    let fd = Cfd::fd("fd", dirty.schema().clone(), &["CC", "item_title"], &["item_price"])?;
    let fd_simple = fd.simplify().pop().expect("single RHS");
    let request = |c: &SimpleCfd| {
        DetectRequest::over(partition.clone())
            .cfd(c.to_cfd())
            .algorithm(Algorithm::PatDetectS)
            .config(cfg)
            .run()
    };
    let plain = request(&fd_simple)?;
    let mined = mine_patterns(&partition, &fd_simple, &MiningConfig::default(), &cfg.cost);
    let refined = request(&mined.cfd)?;
    println!(
        "\nFD + mining: shipped {} tuples plain vs {} with {} mined patterns",
        plain.shipped_tuples, refined.shipped_tuples, mined.added
    );
    assert_eq!(plain.violations.all_tids(), refined.violations.all_tids());
    Ok(())
}
