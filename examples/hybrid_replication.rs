//! The paper's §VIII future work, realized: detection under hybrid
//! (horizontal × vertical) fragmentation and over replicated fragments.
//!
//! ```text
//! cargo run --release --example hybrid_replication
//! ```

use distributed_cfd::datagen::cust::CustConfig;
use distributed_cfd::datagen::inject_errors;
use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CustConfig { n_tuples: 20_000, ..CustConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "street", 0.02, 7);
    let schema = dirty.schema().clone();
    let cfd = parse_cfd(&schema, "phi", "([CC, zip] -> [street])")?;
    let baseline = detect(&dirty, &cfd);
    println!(
        "CUST: {} tuples, {} violating tuples under ([CC, zip] -> [street])\n",
        dirty.len(),
        baseline.tids.len()
    );

    // --- Hybrid fragmentation: 4 horizontal cells × 2 vertical groups. ---
    let horizontal = HorizontalPartition::round_robin(&dirty, 4)?;
    let hybrid = HybridPartition::new(
        &horizontal,
        &[
            &["name", "CC", "AC", "phn", "zip", "city"],
            &["street", "item_title", "item_price", "item_qty"],
        ],
    )?;
    println!(
        "== Hybrid partition: {} cells × {} vertical groups = {} sites ==",
        hybrid.n_cells(),
        hybrid.n_vgroups(),
        hybrid.n_sites()
    );
    let d = DetectRequest::over(hybrid).cfd(cfd.clone()).algorithm(Algorithm::PatDetectS).run()?;
    println!("{}", d.summary());
    println!("(columns gathered per cell as code rows, then σ-blocks shipped across cells)");
    assert_eq!(d.violations.all_tids(), baseline.tids);

    // --- Replication: chained declustering at increasing factors. ---
    println!("\n== Replicated fragments (chained declustering, 4 sites) ==");
    for r in 1..=4 {
        let replicated = ReplicatedPartition::chained(horizontal.clone(), r)?;
        let d = DetectRequest::over(replicated).cfd(cfd.clone()).run()?;
        println!("factor {r}: {}", d.summary());
        assert_eq!(d.violations.all_tids(), baseline.tids);
    }
    println!("\nreplication trades storage for traffic: factor n ⇒ zero shipment ✓");
    Ok(())
}
