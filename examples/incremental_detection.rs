//! Incremental detection over a CDC-style delta feed.
//!
//! Generates a CUST instance, distributes it over 4 sites, builds the
//! persistent violation index at a coordinator, then streams delta
//! batches (Zipf-skewed inserts + deletes, routed per site) through
//! the code-shipped delta protocol — comparing each round's wire cost
//! against what full re-detection would have shipped.
//!
//! ```text
//! cargo run --release --example incremental_detection
//! ```

use distributed_cfd::datagen::cust::{cust_cfds, CustConfig};
use distributed_cfd::datagen::{inject_errors, update_stream, UpdateStreamConfig};
use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = CustConfig { n_tuples: 20_000, ..CustConfig::default() };
    let clean = config.generate();
    let (dirty, n_errors) = inject_errors(&clean, "street", 0.02, 7);
    let sigma = cust_cfds(dirty.schema());
    let partition = HorizontalPartition::round_robin(&dirty, 4)?;
    println!(
        "CUST: {} tuples over 4 sites, {} corrupted streets, {} CFDs",
        dirty.len(),
        n_errors,
        sigma.len()
    );

    // Open the session through the façade: one index build, code rows
    // only.
    let mut session =
        DetectRequest::over(partition.clone()).cfds(sigma.iter().cloned()).session()?;
    let built = session.detection();
    println!(
        "index build: coordinator {}, {} tuples shipped as {} cells ({} bytes), {} violations\n",
        session.coordinator(),
        built.shipped_tuples,
        built.shipped_cells,
        built.shipped_bytes,
        built.violations.all_tids().len(),
    );

    // A delta feed: 6 batches of 500 ops, 70% inserts with Zipf key
    // reuse, 10% of inserts corrupted.
    let stream = update_stream(
        &partition,
        &UpdateStreamConfig { n_batches: 6, ops_per_batch: 500, ..Default::default() },
    );
    println!(
        "{:<7} {:>6} {:>6} {:>12} {:>12} {:>14}",
        "batch", "ins", "del", "violations", "delta bytes", "full-run bytes"
    );
    let mut shipped_before = built.shipped_bytes;
    for (i, per_site) in stream.into_iter().enumerate() {
        let batch = DeltaBatch::from(per_site);
        let (ins, del) = (batch.n_inserts(), batch.n_deletes());
        let report = session.apply_batch(&batch)?;
        let shipped_now = session.detection().shipped_bytes;
        // What a from-scratch PATDETECTS run on the materialized state
        // would ship for the same report (the session owns the live
        // partition; the horizontal variant exposes it).
        let IncrementalSession::Horizontal(run) = &session else { unreachable!("horizontal") };
        let full = DetectRequest::over(run.partition().clone())
            .cfd(sigma[0].clone())
            .algorithm(Algorithm::PatDetectS)
            .run()?;
        println!(
            "{:<7} {:>6} {:>6} {:>12} {:>12} {:>14}",
            i + 1,
            ins,
            del,
            report.all_tids().len(),
            shipped_now - shipped_before,
            full.shipped_bytes,
        );
        shipped_before = shipped_now;
    }

    // Sanity: the maintained report equals full re-detection on the
    // materialized state.
    let rel = session.materialize()?;
    let global = detect_set(&rel, &sigma);
    assert_eq!(session.report().all_tids(), global.all_tids());
    for (name, vs) in &global.per_cfd {
        let report = session.report();
        let (_, got) = report.per_cfd.iter().find(|(n, _)| n == name).expect("entry");
        assert_eq!(&got.tids, &vs.tids, "{name}");
        assert_eq!(&got.patterns, &vs.patterns, "{name}");
    }
    println!("\nmaintained report equals full re-detection on the materialized state ✓");
    Ok(())
}
