//! Observability: what one detection run exposes, end to end.
//!
//! Runs PATDETECTS over a small horizontal partition, prints the run's
//! Prometheus-style metric exposition (the `Detection.metrics`
//! snapshot, frozen at completion), and writes the phase-level trace as
//! chrome-trace JSON under `target/` — load it in `chrome://tracing`
//! or Perfetto. Every timestamp is *simulated* time from `SiteClocks`,
//! so both artifacts are bit-identical run to run, across pool widths
//! and chunk sizes.
//!
//! ```text
//! cargo run --example observability
//! ```

use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .key(&["id"])
        .build()?;
    let rel = Relation::from_rows(
        schema.clone(),
        (0..60)
            .map(|i| vals![i, i % 3, i % 5, format!("c{}", if i % 7 == 0 { 9 } else { i % 2 })])
            .collect(),
    )?;
    let sigma = vec![
        parse_cfd(&schema, "phi1", "([a, b] -> [c])")?,
        parse_cfd(&schema, "phi2", "([a=1, b] -> [c=c1])")?,
    ];
    let partition = HorizontalPartition::round_robin(&rel, 3)?;

    let detection =
        DetectRequest::over(partition).cfds(sigma).algorithm(Algorithm::PatDetectS).run()?;
    println!("{}\n", detection.summary());

    // The frozen registry, in Prometheus text exposition format. The
    // dcd_shipped_*/dcd_control_* families mirror the ShipmentLedger
    // exactly; dcd_kernel_* count group verdicts inside the validation
    // kernel; dcd_run_* are the run-summary gauges.
    println!("{}", detection.metrics.expose());

    // The phase spans, as chrome-trace JSON on the simulated clock:
    // one "X" event per (phase, site) with simulated microseconds.
    let path = std::path::Path::new("target").join("observability_trace.json");
    std::fs::create_dir_all("target")?;
    std::fs::write(&path, detection.trace.chrome_trace_json())?;
    println!("{} spans -> {}", detection.trace.spans.len(), path.display());
    Ok(())
}
