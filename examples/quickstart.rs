//! Quickstart: the paper's running example (Fig. 1), end to end.
//!
//! Builds the EMP relation `D0`, defines cfd1–cfd5, detects violations
//! centrally, then fragments the relation like Fig. 1(b) (by `title`) and
//! shows that the distributed algorithms find exactly the same
//! violations while reporting how much data they shipped.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- The EMP schema and instance D0 of Fig. 1(a). ---
    let schema = Schema::builder("emp")
        .attr("id", ValueType::Int)
        .attr("name", ValueType::Str)
        .attr("title", ValueType::Str)
        .attr("CC", ValueType::Int)
        .attr("AC", ValueType::Int)
        .attr("phn", ValueType::Int)
        .attr("street", ValueType::Str)
        .attr("city", ValueType::Str)
        .attr("zip", ValueType::Str)
        .attr("salary", ValueType::Str)
        .key(&["id"])
        .build()?;
    let d0 = Relation::from_rows(
        schema.clone(),
        vec![
            vals![1, "Sam", "DMTS", 44, 131, 8765432, "Princess Str.", "EDI", "EH2 4HF", "95k"],
            vals![2, "Mike", "MTS", 44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE", "80k"],
            vals![3, "Rick", "DMTS", 44, 131, 3456789, "Mayfield", "NYC", "EH4 8LE", "95k"],
            vals![4, "Philip", "DMTS", 44, 131, 2909209, "Crichton", "EDI", "EH4 8LE", "95k"],
            vals![5, "Adam", "VP", 44, 131, 7478626, "Mayfield", "EDI", "EH4 8LE", "200k"],
            vals![6, "Joe", "MTS", 1, 908, 1416282, "Mtn Ave", "NYC", "07974", "110k"],
            vals![7, "Bob", "DMTS", 1, 908, 2345678, "Mtn Ave", "MH", "07974", "150k"],
            vals![8, "Jef", "DMTS", 31, 20, 8765432, "Muntplein", "AMS", "1012 WR", "90k"],
            vals![9, "Steven", "MTS", 31, 20, 1425364, "Spuistraat", "AMS", "1012 WR", "75k"],
            vals![10, "Bram", "MTS", 31, 10, 2536475, "Kruisplein", "ROT", "3012 CC", "75k"],
        ],
    )?;

    // --- The data quality rules cfd1–cfd5 of Example 1. ---
    let sigma = vec![
        parse_cfd(&schema, "cfd1", "([CC=44, zip] -> [street])")?,
        parse_cfd(&schema, "cfd2", "([CC=31, zip] -> [street])")?,
        parse_cfd(&schema, "cfd3", "([CC, title] -> [salary])")?,
        parse_cfd(&schema, "cfd4", "([CC=44, AC=131] -> [city=EDI])")?,
        parse_cfd(&schema, "cfd5", "([CC=1, AC=908] -> [city=MH])")?,
    ];

    // --- Centralized detection (the TODS'08 baseline). ---
    println!("== Centralized detection on D0 ==");
    let report = detect_set(&d0, &sigma);
    for (name, vs) in &report.per_cfd {
        let mut ids: Vec<u64> = vs.tids.iter().map(|t| t.0 + 1).collect();
        ids.sort();
        println!("  {name}: violating tuples {ids:?}");
    }
    let mut all: Vec<u64> = report.all_tids().iter().map(|t| t.0 + 1).collect();
    all.sort();
    println!("  Vio(Σ, D0) = t{all:?}  (the paper: t2–t6, t8, t9)\n");

    // --- Fragment like Fig. 1(b): by title, three sites. ---
    let title = schema.require("title")?;
    let partition = HorizontalPartition::by_predicates(
        &d0,
        vec![
            Predicate::atom(Atom::eq(title, "MTS")),
            Predicate::atom(Atom::eq(title, "DMTS")),
            Predicate::atom(Atom::eq(title, "VP")),
        ],
    )?;
    println!("== Horizontal partition (Fig. 1(b): MTS / DMTS / VP) ==");
    for f in partition.fragments() {
        println!("  {}: {} tuples", f.site, f.data.len());
    }

    // --- Distributed detection through the one front door: a
    // DetectRequest per algorithm, same topology, same Σ. Sites ship
    // (tid, codes) rows — 4 bytes per cell — never tuple payloads. ---
    println!("\n== Distributed detection ==");
    let cfg = RunConfig::default();
    for alg in [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT] {
        let d = DetectRequest::over(partition.clone())
            .cfds(sigma.iter().cloned())
            .algorithm(alg)
            .config(cfg)
            .run()?;
        println!("  {}", d.summary());
        assert_eq!(d.violations.all_tids(), report.all_tids(), "distributed == centralized");
    }
    println!("\nAll algorithms agree with centralized detection.");
    Ok(())
}
