//! The full data-quality workflow: discover CFDs from a trusted sample,
//! then run distributed detection with them on fresh (dirty) data.
//!
//! The paper assumes Σ is given and cites discovery as complementary
//! related work ([18], [19]); this example closes the loop with the
//! `dcd-cfd::discovery` module.
//!
//! ```text
//! cargo run --release --example rule_discovery
//! ```

use distributed_cfd::cfd::{discover_cfds, DiscoveryConfig};
use distributed_cfd::datagen::cust::CustConfig;
use distributed_cfd::datagen::inject_errors;
use distributed_cfd::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A trusted, curated sample (clean by construction).
    let sample_config = CustConfig { n_tuples: 5_000, seed: 11, ..CustConfig::default() };
    let sample = sample_config.generate();
    println!("trusted sample: {} tuples", sample.len());

    // Discover rules over the address/pricing attributes.
    let rules = discover_cfds(
        &sample,
        &["CC", "AC", "zip", "item_title"],
        &["street", "city", "item_price"],
        &DiscoveryConfig { max_lhs: 2, min_support: 25, max_patterns: 16, emit_constants: false },
    );
    println!("\ndiscovered {} rules:", rules.len());
    for cfd in rules.iter().take(8) {
        println!("  {cfd}");
    }
    if rules.len() > 8 {
        println!("  … {} more", rules.len() - 8);
    }
    assert!(!rules.is_empty());

    // Fresh production data, same process, with real errors.
    let prod_config = CustConfig { n_tuples: 30_000, seed: 99, ..CustConfig::default() };
    let clean = prod_config.generate();
    let (dirty, n_err) = inject_errors(&clean, "street", 0.01, 5);
    println!("\nproduction data: {} tuples, {} corrupted streets", dirty.len(), n_err);

    // Distributed detection with the discovered Σ.
    let partition = HorizontalPartition::round_robin(&dirty, 6)?;
    let d = DetectRequest::over(partition)
        .cfds(rules.iter().cloned())
        .algorithm(Algorithm::clust_detect())
        .run()?;
    println!("\nover 6 sites: {}", d.summary());

    // The street corruptions are caught by the street rules.
    let street_hits: usize = d
        .violations
        .per_cfd
        .iter()
        .filter(|(name, _)| name.contains("street"))
        .map(|(_, v)| v.tids.len())
        .sum();
    println!("violations attributed to street rules: {street_hits}");
    assert!(street_hits > 0, "injected street errors must be caught");

    // Sanity: distributed equals centralized.
    let baseline = detect_set(&dirty, &rules);
    assert_eq!(d.violations.all_tids(), baseline.all_tids());
    println!("\ndistributed result equals centralized detection ✓");
    Ok(())
}
