//! Vertical partitions: dependency preservation, minimum refinement and
//! detection with column shipment (§V of the paper).
//!
//! Reproduces Example 7: the EMP relation split vertically into
//! address / phone / salary fragments does not preserve Σ0; the minimum
//! augmentation adds CC and salary to DV1 and city to DV2 (size 3).
//! Then runs detection on the *unrefined* partition, where columns must
//! ship, comparing full vs. constant-filtered shipping.
//!
//! ```text
//! cargo run --example vertical_refinement
//! ```

use distributed_cfd::prelude::*;
use distributed_cfd::vertical::unpreserved;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::builder("emp")
        .attr("id", ValueType::Int)
        .attr("name", ValueType::Str)
        .attr("title", ValueType::Str)
        .attr("CC", ValueType::Int)
        .attr("AC", ValueType::Int)
        .attr("phn", ValueType::Int)
        .attr("street", ValueType::Str)
        .attr("city", ValueType::Str)
        .attr("zip", ValueType::Str)
        .attr("salary", ValueType::Str)
        .key(&["id"])
        .build()?;
    let d0 = Relation::from_rows(
        schema.clone(),
        vec![
            vals![1, "Sam", "DMTS", 44, 131, 8765432, "Princess Str.", "EDI", "EH2 4HF", "95k"],
            vals![2, "Mike", "MTS", 44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE", "80k"],
            vals![3, "Rick", "DMTS", 44, 131, 3456789, "Mayfield", "NYC", "EH4 8LE", "95k"],
            vals![4, "Philip", "DMTS", 44, 131, 2909209, "Crichton", "EDI", "EH4 8LE", "95k"],
            vals![5, "Adam", "VP", 44, 131, 7478626, "Mayfield", "EDI", "EH4 8LE", "200k"],
            vals![6, "Joe", "MTS", 1, 908, 1416282, "Mtn Ave", "NYC", "07974", "110k"],
            vals![7, "Bob", "DMTS", 1, 908, 2345678, "Mtn Ave", "MH", "07974", "150k"],
            vals![8, "Jef", "DMTS", 31, 20, 8765432, "Muntplein", "AMS", "1012 WR", "90k"],
            vals![9, "Steven", "MTS", 31, 20, 1425364, "Spuistraat", "AMS", "1012 WR", "75k"],
            vals![10, "Bram", "MTS", 31, 10, 2536475, "Kruisplein", "ROT", "3012 CC", "75k"],
        ],
    )?;
    let sigma = vec![
        parse_cfd(&schema, "phi1a", "([CC=44, zip] -> [street])")?,
        parse_cfd(&schema, "phi1b", "([CC=31, zip] -> [street])")?,
        parse_cfd(&schema, "phi2", "([CC, title] -> [salary])")?,
        parse_cfd(&schema, "phi3a", "([CC=44, AC=131] -> [city=EDI])")?,
        parse_cfd(&schema, "phi3b", "([CC=1, AC=908] -> [city=MH])")?,
    ];

    // --- The Example 1 vertical partition. ---
    let partition = VerticalPartition::by_attribute_groups(
        &d0,
        &[
            &["name", "title", "street", "city", "zip"], // DV1: identity + address
            &["CC", "AC", "phn"],                        // DV2: phone
            &["salary"],                                 // DV3: salary
        ],
    )?;
    println!("== Vertical partition (Example 1) ==");
    for f in partition.fragments() {
        println!("  {}: {}", f.site, f.data.schema());
    }

    // --- Dependency preservation (Proposition 7). ---
    let groups = partition.attr_groups();
    let preserved = is_preserved(schema.arity(), &groups, &sigma);
    println!("\ndependency preserving w.r.t. Σ0? {preserved}");
    for phi in unpreserved(schema.arity(), &groups, &sigma) {
        println!("  not locally checkable: {phi}");
    }

    // --- Minimum refinement (Example 7). ---
    let exact = refine_exact(schema.arity(), &groups, &sigma, 4)
        .expect("a preserving augmentation of size ≤ 4 exists");
    println!("\nminimum augmentation (size {}):", exact.size());
    for (i, adds) in exact.adds.iter().enumerate() {
        if !adds.is_empty() {
            let names: Vec<&str> = adds.iter().map(|&a| schema.attr_name(a)).collect();
            println!("  add {names:?} to fragment {}", i + 1);
        }
    }
    let greedy = refine_greedy(schema.arity(), &groups, &sigma);
    println!("greedy heuristic found size {}", greedy.size());
    assert!(is_preserved(schema.arity(), &exact.apply(&groups), &sigma));

    // --- Detection on the unrefined partition: columns must ship. ---
    println!("\n== Detection with column shipment (unrefined partition) ==");
    let baseline = detect_set(&d0, &sigma);
    for mode in [ShipMode::Full, ShipMode::Filtered] {
        let out = DetectRequest::over(partition.clone())
            .cfds(sigma.iter().cloned())
            .ship_mode(mode)
            .run()?;
        println!("  {:?}: {}", mode, out.summary());
        assert_eq!(out.violations.all_tids(), baseline.all_tids());
    }
    println!("\nvertical detection equals centralized detection ✓");
    Ok(())
}
