//! The code-native detection façade: one request object over every
//! topology.
//!
//! The workspace grew five public detection entry points with five
//! different signatures — the per-topology engine functions
//! (`run_batch`, `run_seq`/`run_clust`, `run_hybrid`,
//! `run_replicated`, `run_vertical`) and the incremental runs. This
//! module folds them into a single front door, the shape a production
//! service exposes
//! (measure-style front doors hiding the placement behind one request
//! object are standard in the inconsistency-measurement literature —
//! Livshits et al., *Properties of Inconsistency Measures for
//! Databases*; Parisi & Grant, *Inconsistency Measures for Relational
//! Databases*):
//!
//! * [`Topology`] names where the data lives: horizontal, vertical,
//!   hybrid or replicated partitions;
//! * [`Algorithm`] names how to detect: the paper's three single-CFD
//!   algorithms plus `SEQDETECT` and `CLUSTDETECT`;
//! * [`DetectRequest`] couples the two with the rules Σ and a
//!   [`RunConfig`]; [`DetectRequest::run`] returns the same
//!   [`Detection`] every engine produces, and
//!   [`DetectRequest::session`] opens an [`IncrementalSession`] that
//!   maintains the result under delta batches instead of re-running.
//!
//! Every engine beneath the façade ships dictionary codes, never value
//! payloads: batch coordinators gather `(tid, codes)` rows charged at
//! 4 bytes/cell ([`dcd_dist::CODE_BYTES`]), and incremental sessions
//! ship delta code rows the same way. The pre-façade deprecated shims
//! (`Detector::run*`, `MultiDetector::run`, the free `detect_*`
//! functions) have been retired; the engines remain public for direct
//! use, and `tests/prop_facade.rs` pins the façade bit-identical to
//! them.
//!
//! ```
//! use distributed_cfd::prelude::*;
//!
//! let schema = Schema::builder("r")
//!     .attr("cc", ValueType::Int)
//!     .attr("zip", ValueType::Str)
//!     .attr("street", ValueType::Str)
//!     .build()?;
//! let rel = Relation::from_rows(schema.clone(), vec![
//!     vals![44, "z1", "a"],
//!     vals![44, "z1", "b"],
//!     vals![31, "z2", "c"],
//! ])?;
//! let cfd = parse_cfd(&schema, "phi", "([cc, zip] -> [street])")?;
//! let partition = HorizontalPartition::round_robin(&rel, 3)?;
//!
//! let detection = DetectRequest::over(partition)
//!     .cfd(cfd)
//!     .algorithm(Algorithm::PatDetectS)
//!     .run()?;
//! assert_eq!(detection.violations.all_tids().len(), 2);
//! println!("{}", detection.summary());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use dcd_cfd::{Cfd, SimpleCfd, ViolationReport};
use dcd_core::runner::run_batch;
use dcd_core::{
    run_clust, run_hybrid, run_replicated, run_seq, CoordinatorStrategy, Detection, MiningConfig,
    RunConfig,
};
use dcd_dist::{
    HorizontalPartition, HybridPartition, ReplicatedPartition, SiteId, VerticalPartition,
};
use dcd_incr::{DeltaBatch, IncrementalRun, VerticalIncrementalRun};
use dcd_relation::{Relation, RelationError};
use dcd_vertical::{run_vertical, ShipMode};

/// Where the data lives: one of the four fragmentation schemes the
/// workspace detects over. Each variant owns its partition — a request
/// is a self-contained unit of work, the shape a service queue wants.
#[derive(Debug, Clone)]
pub enum Topology {
    /// Horizontal fragments `Di = σ_Fi(D)` across sites (§II-B).
    Horizontal(HorizontalPartition),
    /// Vertical fragments `Di = π_{key ∪ Xi}(D)` (§II-B, §V).
    Vertical(VerticalPartition),
    /// Horizontal cells, each split vertically (§II-B; §VIII).
    Hybrid(HybridPartition),
    /// Horizontal fragments replicated by chained declustering (§VIII).
    Replicated(ReplicatedPartition),
}

impl Topology {
    /// Number of sites the topology spans.
    pub fn n_sites(&self) -> usize {
        match self {
            Topology::Horizontal(p) => p.n_sites(),
            Topology::Vertical(p) => p.n_sites(),
            Topology::Hybrid(p) => p.n_sites(),
            Topology::Replicated(p) => p.n_sites(),
        }
    }
}

impl From<HorizontalPartition> for Topology {
    fn from(p: HorizontalPartition) -> Self {
        Topology::Horizontal(p)
    }
}
impl From<VerticalPartition> for Topology {
    fn from(p: VerticalPartition) -> Self {
        Topology::Vertical(p)
    }
}
impl From<HybridPartition> for Topology {
    fn from(p: HybridPartition) -> Self {
        Topology::Hybrid(p)
    }
}
impl From<ReplicatedPartition> for Topology {
    fn from(p: ReplicatedPartition) -> Self {
        Topology::Replicated(p)
    }
}

/// How to detect: the paper's single-CFD algorithms (§IV-B) and the
/// multi-CFD ones (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// `CTRDETECT`: one coordinator for the whole CFD.
    CtrDetect,
    /// `PATDETECTS`: per-pattern coordinators minimizing shipment.
    PatDetectS,
    /// `PATDETECTRT`: per-pattern coordinators minimizing the §III-B
    /// response-time estimate.
    PatDetectRT,
    /// `SEQDETECT`: pipelined one-CFD-at-a-time processing, each round
    /// run with the given single-CFD strategy.
    SeqDetect(CoordinatorStrategy),
    /// `CLUSTDETECT`: CFDs clustered by LHS containment, one shipment
    /// per tuple per cluster, rounds run with the given strategy.
    ClustDetect(CoordinatorStrategy),
}

impl Algorithm {
    /// `SEQDETECT` with its default inner strategy (`PATDETECTRT`, the
    /// paper's best general choice).
    pub fn seq_detect() -> Self {
        Algorithm::SeqDetect(CoordinatorStrategy::MinResponseTime)
    }

    /// `CLUSTDETECT` with its default inner strategy (`PATDETECTRT`).
    pub fn clust_detect() -> Self {
        Algorithm::ClustDetect(CoordinatorStrategy::MinResponseTime)
    }

    /// The coordinator strategy driving this algorithm's rounds.
    pub fn strategy(self) -> CoordinatorStrategy {
        match self {
            Algorithm::CtrDetect => CoordinatorStrategy::Central,
            Algorithm::PatDetectS => CoordinatorStrategy::MinShipment,
            Algorithm::PatDetectRT => CoordinatorStrategy::MinResponseTime,
            Algorithm::SeqDetect(inner) | Algorithm::ClustDetect(inner) => inner,
        }
    }
}

impl Default for Algorithm {
    /// `PATDETECTS` — the paper's shipment-minimizing default.
    fn default() -> Self {
        Algorithm::PatDetectS
    }
}

/// One detection request: a [`Topology`], the rules Σ, an
/// [`Algorithm`] and a [`RunConfig`] — everything a run needs, behind
/// one `run()`.
///
/// Built builder-style; see the [module docs](self) for an example.
/// With several CFDs and a single-CFD algorithm, the CFDs are
/// processed as sequential rounds over one shared ledger and clock set
/// (exactly how `SEQDETECT` pipelines); on vertical topologies the
/// [`ShipMode`] knob selects full or constant-filtered column
/// shipment, and on replicated ones the replica-aware `REPDETECT`
/// coordinator rule applies regardless of the algorithm's strategy.
#[derive(Debug, Clone)]
pub struct DetectRequest {
    topology: Topology,
    cfds: Vec<Cfd>,
    algorithm: Algorithm,
    config: RunConfig,
    ship_mode: ShipMode,
}

impl DetectRequest {
    /// Starts a request over a topology (any partition converts via
    /// [`From`]).
    pub fn over(topology: impl Into<Topology>) -> Self {
        DetectRequest {
            topology: topology.into(),
            cfds: Vec::new(),
            algorithm: Algorithm::default(),
            config: RunConfig::default(),
            ship_mode: ShipMode::Filtered,
        }
    }

    /// Adds one CFD to Σ.
    pub fn cfd(mut self, cfd: Cfd) -> Self {
        self.cfds.push(cfd);
        self
    }

    /// Adds every CFD of an iterator to Σ.
    pub fn cfds(mut self, cfds: impl IntoIterator<Item = Cfd>) -> Self {
        self.cfds.extend(cfds);
        self
    }

    /// Selects the detection algorithm (default: `PATDETECTS`).
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Sets the run configuration (cost model, compute mode, pool
    /// width).
    pub fn config(mut self, config: RunConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the vertical column-shipment mode (default:
    /// [`ShipMode::Filtered`]). Ignored by the other topologies.
    pub fn ship_mode(mut self, mode: ShipMode) -> Self {
        self.ship_mode = mode;
        self
    }

    /// The topology the request targets.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Runs the batch detection and returns the [`Detection`] — same
    /// violations, traffic and timing every engine reports, whatever
    /// the topology.
    ///
    /// How much of the [`Algorithm`] each topology honours:
    ///
    /// * **Horizontal** — fully (all five algorithms);
    /// * **Hybrid** — the algorithm's coordinator *strategy* drives
    ///   the per-CFD horizontal rounds across cells;
    ///   `SeqDetect(inner)` / `ClustDetect(inner)` reduce to
    ///   sequential rounds with `inner` (no cross-CFD clustering);
    /// * **Replicated** — the replica-aware `REPDETECT` coordinator
    ///   rule applies regardless of the algorithm;
    /// * **Vertical** — placement is fixed by column coverage; the
    ///   algorithm is ignored and [`ShipMode`] is the knob that
    ///   matters.
    pub fn run(self) -> Result<Detection, RelationError> {
        let cfg = self.config;
        match &self.topology {
            Topology::Horizontal(p) => match self.algorithm {
                Algorithm::SeqDetect(inner) => Ok(run_seq(p, &self.cfds, inner, &cfg)),
                Algorithm::ClustDetect(inner) => Ok(run_clust(p, &self.cfds, inner, &cfg)),
                single
                @ (Algorithm::CtrDetect | Algorithm::PatDetectS | Algorithm::PatDetectRT) => {
                    let simples: Vec<_> = self.cfds.iter().flat_map(Cfd::simplify).collect();
                    Ok(run_batch(p, &simples, single.strategy(), &cfg))
                }
            },
            Topology::Vertical(p) => run_vertical(p, &self.cfds, self.ship_mode, &cfg),
            Topology::Hybrid(p) => run_hybrid(p, &self.cfds, self.algorithm.strategy(), &cfg),
            Topology::Replicated(p) => Ok(run_replicated(p, &self.cfds, &cfg)),
        }
    }

    /// Opens an incremental session instead of running once: the
    /// initial index build ships code rows to a coordinator, after
    /// which [`IncrementalSession::apply_batch`] maintains the
    /// violation report per delta batch at a fraction of a re-run's
    /// cost. Supported over horizontal, replicated and vertical
    /// topologies; a hybrid topology returns an error (its gather
    /// recomputes per round — re-run the batch request instead).
    ///
    /// The session consumes the request: it owns the partition, which
    /// mutates as batches apply.
    pub fn session(self) -> Result<IncrementalSession, RelationError> {
        let cfg = self.config;
        match self.topology {
            Topology::Horizontal(p) => {
                Ok(IncrementalSession::Horizontal(IncrementalRun::new(p, &self.cfds, cfg)?))
            }
            Topology::Replicated(p) => Ok(IncrementalSession::Horizontal(
                IncrementalRun::new_replicated(&p, &self.cfds, cfg)?,
            )),
            Topology::Vertical(p) => {
                Ok(IncrementalSession::Vertical(VerticalIncrementalRun::new(p, &self.cfds, cfg)?))
            }
            Topology::Hybrid(_) => Err(RelationError::InvalidPartition {
                detail: "incremental sessions are not supported over hybrid topologies; \
                         re-run the batch DetectRequest after applying changes"
                    .into(),
            }),
        }
    }
}

/// A stateful detection session opened by [`DetectRequest::session`]:
/// the topology-appropriate incremental run behind one interface.
#[derive(Debug)]
pub enum IncrementalSession {
    /// A horizontal (or chained-declustering replicated) delta
    /// protocol run.
    Horizontal(IncrementalRun),
    /// A vertical (whole-tuple feed) delta protocol run.
    Vertical(VerticalIncrementalRun),
}

impl IncrementalSession {
    /// Applies one delta batch and returns the resulting report
    /// revision. Vertical sessions consume the batch as one site-order
    /// whole-tuple feed ([`DeltaBatch::flatten`]).
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<ViolationReport, RelationError> {
        match self {
            IncrementalSession::Horizontal(run) => Ok(run.apply_batch(batch)?.report),
            IncrementalSession::Vertical(run) => Ok(run.apply_batch(&batch.flatten())?.report),
        }
    }

    /// The current report revision (maintained, not recomputed).
    pub fn report(&self) -> ViolationReport {
        match self {
            IncrementalSession::Horizontal(run) => run.report(),
            IncrementalSession::Vertical(run) => run.report(),
        }
    }

    /// A [`Detection`] snapshot of the whole session so far: the live
    /// report plus the accumulated traffic, clocks and paper cost.
    pub fn detection(&self) -> Detection {
        match self {
            IncrementalSession::Horizontal(run) => run.detection(),
            IncrementalSession::Vertical(run) => run.detection(),
        }
    }

    /// The coordinator site holding the violation indices.
    pub fn coordinator(&self) -> SiteId {
        match self {
            IncrementalSession::Horizontal(run) => run.coordinator(),
            IncrementalSession::Vertical(run) => run.coordinator(),
        }
    }

    /// Reassembles the materialized relation (for comparison against
    /// centralized detection).
    pub fn materialize(&self) -> Result<Relation, RelationError> {
        match self {
            IncrementalSession::Horizontal(run) => run.materialize(),
            IncrementalSession::Vertical(run) => run.materialize(),
        }
    }

    /// Registers a compiled CFD for incremental mined-tableau
    /// maintenance (§IV-B refinement kept current under deltas): the
    /// per-site support counts are built once from the current
    /// fragments, then every [`Self::apply_batch`] adjusts them from
    /// the batch's affected code rows — `rows × masks` key updates
    /// instead of a full re-mine. Returns a handle for
    /// [`Self::mined_cfd`]. Horizontal (and replicated) sessions only;
    /// vertical sessions return an error (mining walks LHS item sets
    /// over horizontal fragments).
    pub fn track_mining(
        &mut self,
        cfd: &SimpleCfd,
        config: &MiningConfig,
    ) -> Result<usize, RelationError> {
        match self {
            IncrementalSession::Horizontal(run) => Ok(run.track_mining(cfd, config)),
            IncrementalSession::Vertical(_) => Err(RelationError::InvalidPartition {
                detail: "mined-tableau maintenance needs horizontal fragments; \
                         vertical sessions do not support track_mining"
                    .into(),
            }),
        }
    }

    /// The refined CFD derived from a tracked miner's maintained
    /// counts — bit-identical to re-mining the materialized fragments —
    /// plus the number of mined patterns.
    pub fn mined_cfd(&self, id: usize) -> (SimpleCfd, usize) {
        match self {
            IncrementalSession::Horizontal(run) => run.mined_cfd(id),
            IncrementalSession::Vertical(_) => {
                unreachable!("track_mining rejects vertical sessions, so no id can exist")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcd_cfd::parse_cfd;
    use dcd_relation::{vals, Schema, ValueType};
    use std::sync::Arc;

    fn schema() -> Arc<dcd_relation::Schema> {
        Schema::builder("r")
            .attr("id", ValueType::Int)
            .attr("cc", ValueType::Int)
            .attr("zip", ValueType::Str)
            .attr("street", ValueType::Str)
            .key(&["id"])
            .build()
            .unwrap()
    }

    fn sample(n: usize) -> Relation {
        Relation::from_rows(
            schema(),
            (0..n)
                .map(|i| {
                    vals![
                        i,
                        if i % 3 == 0 { 44 } else { 31 },
                        format!("z{}", i % 5),
                        format!("s{}", i % 4)
                    ]
                })
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn one_request_shape_over_every_topology() {
        let rel = sample(60);
        let cfd = parse_cfd(rel.schema(), "phi", "([cc, zip] -> [street])").unwrap();
        let global = dcd_cfd::detect(&rel, &cfd);
        assert!(!global.tids.is_empty());
        let horizontal = HorizontalPartition::round_robin(&rel, 4).unwrap();
        let topologies: Vec<Topology> = vec![
            horizontal.clone().into(),
            VerticalPartition::by_attribute_groups(&rel, &[&["cc", "zip"], &["street"]])
                .unwrap()
                .into(),
            HybridPartition::new(&horizontal, &[&["cc", "zip"], &["street"]]).unwrap().into(),
            ReplicatedPartition::chained(horizontal.clone(), 2).unwrap().into(),
        ];
        for topology in topologies {
            let label = format!("{topology:?}");
            let d = DetectRequest::over(topology).cfd(cfd.clone()).run().unwrap();
            assert_eq!(d.violations.all_tids(), global.tids, "{}", &label[..30.min(label.len())]);
        }
    }

    #[test]
    fn algorithms_map_to_their_strategies_and_labels() {
        let rel = sample(40);
        let cfd = parse_cfd(rel.schema(), "phi", "([cc, zip] -> [street])").unwrap();
        let partition = HorizontalPartition::round_robin(&rel, 3).unwrap();
        for (alg, label) in [
            (Algorithm::CtrDetect, "CTRDETECT"),
            (Algorithm::PatDetectS, "PATDETECTS"),
            (Algorithm::PatDetectRT, "PATDETECTRT"),
            (Algorithm::seq_detect(), "SEQDETECT"),
            (Algorithm::clust_detect(), "CLUSTDETECT"),
        ] {
            let d = DetectRequest::over(partition.clone())
                .cfd(cfd.clone())
                .algorithm(alg)
                .run()
                .unwrap();
            assert_eq!(d.algorithm, label);
        }
    }

    #[test]
    fn session_maintains_report_under_deltas() {
        use dcd_relation::{RelationDelta, Tuple, TupleId};
        let rel = sample(20);
        let cfd = parse_cfd(rel.schema(), "phi", "([cc, zip] -> [street])").unwrap();
        let partition = HorizontalPartition::round_robin(&rel, 2).unwrap();
        let mut session =
            DetectRequest::over(partition).cfd(cfd.clone()).session().expect("session opens");
        // Insert a fresh conflict at site 0.
        let batch = DeltaBatch::new(vec![
            RelationDelta::new(vec![Tuple::new(TupleId(100), vals![100, 44, "z0", "sX"])], vec![]),
            RelationDelta::default(),
        ]);
        session.apply_batch(&batch).unwrap();
        let rel_now = session.materialize().unwrap();
        let global = dcd_cfd::detect(&rel_now, &cfd);
        assert_eq!(session.report().all_tids(), global.tids);
        assert_eq!(session.detection().algorithm, dcd_incr::ALGORITHM);
    }

    #[test]
    fn hybrid_sessions_are_rejected() {
        let rel = sample(12);
        let horizontal = HorizontalPartition::round_robin(&rel, 2).unwrap();
        let hybrid = HybridPartition::new(&horizontal, &[&["cc", "zip"], &["street"]]).unwrap();
        let err = DetectRequest::over(hybrid).session();
        assert!(err.is_err());
    }
}
