//! # distributed-cfd
//!
//! A Rust reproduction of **Fan, Geerts, Ma & Müller, "Detecting
//! Inconsistencies in Distributed Data" (ICDE 2010)**: detecting
//! violations of conditional functional dependencies (CFDs) in relations
//! that are fragmented — horizontally or vertically — and distributed
//! across sites, while minimizing data shipment or response time.
//!
//! This crate is a facade re-exporting the workspace, plus the one
//! public detection API:
//!
//! * [`api`] — [`DetectRequest`]: one code-native request object over
//!   every topology ([`Topology`]) and algorithm ([`Algorithm`]),
//!   batch (`run()` → [`Detection`](dcd_core::Detection)) or
//!   incremental (`session()` → [`IncrementalSession`]),
//! * [`relation`] — the in-memory relational engine substrate,
//! * [`cfd`] — CFDs: pattern tableaux, centralized detection, implication,
//! * [`dist`] — fragmentation, the shipment ledger and the cost model,
//! * [`core`] — the paper's detection algorithms (`CTRDETECT`,
//!   `PATDETECTS`, `PATDETECTRT`, `SEQDETECT`, `CLUSTDETECT`, mining),
//! * [`incr`] — incremental detection: delta streams, the persistent
//!   violation index and the code-shipped delta protocol,
//! * [`vertical`] — dependency preservation and minimum refinement,
//! * [`obs`] — deterministic observability: the per-run metrics
//!   registry, Prometheus-style exposition, and simulated-clock traces,
//! * [`complexity`] — executable NP-hardness artifacts,
//! * [`datagen`] — the CUST / XREF workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use distributed_cfd::prelude::*;
//!
//! // The EMP relation of the paper's Fig. 1(a), as a workload would
//! // build it: schema, rows, a CFD, a fragmentation — then one
//! // DetectRequest, whatever the topology or algorithm.
//! let schema = Schema::builder("emp")
//!     .attr("id", ValueType::Int)
//!     .attr("CC", ValueType::Int)
//!     .attr("zip", ValueType::Str)
//!     .attr("street", ValueType::Str)
//!     .key(&["id"])
//!     .build()?;
//! let rel = Relation::from_rows(schema.clone(), vec![
//!     vals![1, 44, "EH4 8LE", "Mayfield"],
//!     vals![2, 44, "EH4 8LE", "Crichton"],  // violates cfd1 with t1
//!     vals![3, 31, "1012 WR", "Muntplein"],
//! ])?;
//! let cfd = parse_cfd(&schema, "cfd1", "([CC=44, zip] -> [street])")?;
//!
//! // Distribute over three sites and detect with PATDETECTS. Sites
//! // ship (tid, codes) rows — 4 bytes per cell — never tuple payloads.
//! let partition = HorizontalPartition::round_robin(&rel, 3)?;
//! let detection = DetectRequest::over(partition)
//!     .cfd(cfd)
//!     .algorithm(Algorithm::PatDetectS)
//!     .run()?;
//! assert_eq!(detection.violations.all_tids().len(), 2);
//! // One-line report, now with control traffic:
//! // `PATDETECTS: 2 violating tuples (1 patterns), shipped 2 tuples
//! //  (8 cells, 32 B), 6 control msgs (48 B), response 0.0000s`.
//! println!("{}", detection.summary());
//! // Every run also carries its metrics and trace:
//! println!("{}", detection.metrics.expose()); // Prometheus-style text
//! let _chrome_json = detection.trace.chrome_trace_json();
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod api;

pub use api::{Algorithm, DetectRequest, IncrementalSession, Topology};
pub use dcd_cfd as cfd;
pub use dcd_complexity as complexity;
pub use dcd_core as core;
pub use dcd_datagen as datagen;
pub use dcd_dist as dist;
pub use dcd_incr as incr;
pub use dcd_obs as obs;
pub use dcd_relation as relation;
pub use dcd_vertical as vertical;

/// One-stop imports for the common API surface.
pub mod prelude {
    pub use crate::api::{Algorithm, DetectRequest, IncrementalSession, Topology};
    pub use dcd_cfd::{
        detect, detect_set, detect_simple, discover, discover_cfds, parse_cfd, satisfies, Cfd,
        CodeLayout, DiscoveryConfig, NormalPattern, PatternTuple, PatternValue, SimpleCfd,
        ViolationReport, ViolationSet,
    };
    pub use dcd_core::{
        mine_patterns, ClustDetect, CoordinatorStrategy, CtrDetect, Detection, DetectionSummary,
        Detector, MinedTableau, MiningConfig, MultiDetector, PatDetectRT, PatDetectS, RunConfig,
        SeqDetect,
    };
    pub use dcd_dist::{
        CostModel, Fragment, HorizontalPartition, HybridPartition, ReplicatedPartition,
        ShipmentLedger, SiteClocks, SiteId, VFragment, VerticalPartition, CODE_BYTES, TID_CELLS,
    };
    pub use dcd_incr::{DeltaBatch, IncrementalRun, VerticalIncrementalRun, ViolationIndex};
    pub use dcd_obs::{
        host_registry, MetricsRegistry, MetricsSnapshot, RunObserver, RunTrace, SampleValue, Span,
    };
    pub use dcd_relation::{
        vals, Atom, CmpOp, Conjunction, DeltaEffect, Predicate, Relation, RelationDelta, Schema,
        Tuple, TupleId, Value, ValueType,
    };
    pub use dcd_vertical::{is_preserved, refine_exact, refine_greedy, ShipMode};
}
