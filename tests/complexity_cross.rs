//! Cross-crate validation of the complexity artifacts: the Theorem 8
//! reduction instances checked with the *full* chase-based preservation
//! machinery of `dcd-vertical` (the in-crate tests use an FD-specific
//! Beeri–Honeyman check), and the Theorem 1 instances checked against
//! the exhaustive minimum-shipment search of `dcd-core`.

use distributed_cfd::complexity::{
    mhd_reduction, mrp_reduction, HittingSetInstance, SetCoverInstance,
};
use distributed_cfd::prelude::*;
use distributed_cfd::vertical::is_preserved;

#[test]
fn mrp_reduction_agrees_with_chase_based_preservation() {
    let hs = HittingSetInstance::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3]]);
    let inst = mrp_reduction(&hs);
    let arity = inst.schema.arity();
    // Unrefined: not preserving.
    assert!(!is_preserved(arity, &inst.groups, &inst.sigma));
    // Any hitting set induces a preserving augmentation.
    for hitting in [vec![1usize, 2], vec![1, 3], vec![0, 2]] {
        assert!(hs.is_hitting(&hitting));
        let refined = inst.augmentation_for(&hitting);
        assert!(is_preserved(arity, &refined, &inst.sigma), "hitting {hitting:?}");
    }
    // A non-hitting singleton that shares no chain with some set fails…
    // here every element appears somewhere, and the pairwise FDs bridge;
    // see the in-crate `mrp_implication_can_beat_hitting_set` for the
    // documented tightness gap. What must always hold: the empty
    // augmentation does not preserve.
    let unrefined = inst.augmentation_for(&[]);
    assert!(!is_preserved(arity, &unrefined, &inst.sigma));
}

#[test]
fn mrp_refinement_algorithms_run_on_reduction_instances() {
    let hs = HittingSetInstance::new(3, vec![vec![0, 1], vec![1, 2]]);
    let inst = mrp_reduction(&hs);
    let arity = inst.schema.arity();
    // Greedy terminates and preserves.
    let greedy = refine_greedy(arity, &inst.groups, &inst.sigma);
    assert!(is_preserved(arity, &greedy.apply(&inst.groups), &inst.sigma));
    // Exact finds something within the hitting-set bound (it may find a
    // smaller implication-based augmentation — the documented gap).
    let k = hs.min_hitting_size().unwrap();
    let exact = refine_exact(arity, &inst.groups, &inst.sigma, k).expect("≤ k exists");
    assert!(exact.size() <= k);
    assert!(is_preserved(arity, &exact.apply(&inst.groups), &inst.sigma));
}

#[test]
fn mhd_reduction_checked_against_detection_machinery() {
    // A tiny MSC instance whose reduction stays within the exhaustive
    // search limits is out of reach (V and U alone hold 6m² tuples), so
    // validate the reduction against full detection instead: shipping
    // the prescribed cover-based set M makes the per-site union of Vioπ
    // equal the global one for all four FDs — using the real detectors.
    let msc =
        SetCoverInstance::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![1, 3, 5], vec![0, 2, 4]]);
    let inst = mhd_reduction(&msc);
    let cover = msc.exact_cover().unwrap();
    let shipment = inst.shipment_for_cover(&cover);
    assert!(inst.checked_locally_after(&shipment));

    // Consistency with the single-site ground truth: reassemble and
    // detect centrally; Vioπ of Bu→B must have 2m patterns.
    let all = inst.partition.reassemble().unwrap();
    let bu_fd = &inst.sigma[3];
    let v = detect(&all, bu_fd);
    assert_eq!(v.patterns.len(), 2 * inst.m);
}

#[test]
fn greedy_cover_drives_a_valid_but_larger_shipment() {
    let msc =
        SetCoverInstance::new(6, vec![vec![0, 1, 2], vec![3, 4, 5], vec![1, 3, 5], vec![0, 2, 4]]);
    let inst = mhd_reduction(&msc);
    let greedy = msc.greedy_cover().unwrap();
    let shipment = inst.shipment_for_cover(&greedy);
    assert!(inst.checked_locally_after(&shipment));
    let exact = msc.exact_cover().unwrap();
    assert!(greedy.len() >= exact.len());
}

#[test]
fn exhaustive_min_shipment_on_a_micro_mhd_like_instance() {
    // The Theorem 1 *shape* at micro scale: two single-tuple "subset"
    // fragments and a "universe" fragment with conflicting B values.
    let schema =
        Schema::builder("r").attr("a", ValueType::Str).attr("b", ValueType::Str).build().unwrap();
    let rel = Relation::from_rows(
        schema.clone(),
        vec![
            vals!["x0", "b"],  // D1
            vals!["x1", "b"],  // D2
            vals!["x0", "bp"], // V
            vals!["x1", "bp"], // V
        ],
    )
    .unwrap();
    let mut frags = Vec::new();
    for (i, idxs) in [vec![0usize], vec![1], vec![2, 3]].iter().enumerate() {
        let mut data = Relation::new(schema.clone());
        for &ti in idxs {
            data.push_tuple(rel.tuples()[ti].clone()).unwrap();
        }
        frags.push(Fragment { site: SiteId(i as u32), predicate: None, data });
    }
    let partition = HorizontalPartition::from_fragments(schema.clone(), frags).unwrap();
    let fd = parse_cfd(&schema, "fd", "([a] -> [b])").unwrap();
    let simple = fd.simplify().pop().unwrap();
    // Both conflicts span sites: at least 2 shipments; exactly 2 suffice
    // (ship each subset tuple to the universe site).
    let opt =
        distributed_cfd::core::min_shipment_exhaustive(&partition, std::slice::from_ref(&simple))
            .unwrap();
    assert_eq!(opt, 2);
}
