//! The morsel determinism contract, pinned as a matrix: every detector
//! × every topology must produce a bit-identical [`Detection`] across
//! pool widths {1, 2, 8} × chunk sizes {7 rows, default}. The baseline
//! is the width-1 default-chunk run; every other cell of the matrix
//! must match it field for field, f64s compared by bits. This is the
//! property `dcd_lint`'s `hash-iteration-order` and `stray-thread`
//! rules guard statically and the morsel pipeline must uphold
//! dynamically: scheduling (who runs which (site, chunk) morsel, in
//! what order, stolen or not) must never reach the output.

use distributed_cfd::prelude::*;
use distributed_cfd::relation::set_chunk_rows;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// ~120 rows over tiny domains: plenty of FD collisions, several
/// chunks at chunk size 7, and skew (site 0 of the round-robin gets no
/// more than the others, but the `a = i % 3` domain skews groups).
fn sample() -> Relation {
    Relation::from_rows(
        schema(),
        (0..120)
            .map(|i| {
                vals![
                    i,
                    i % 3,
                    i % 5,
                    format!("c{}", i % 4),
                    format!("d{}", if i % 7 == 0 { 9 } else { i % 2 })
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn sigma(s: &Arc<Schema>) -> Vec<Cfd> {
    vec![
        parse_cfd(s, "phi1", "([a, b] -> [d])").unwrap(),
        parse_cfd(s, "phi2", "([a=1, c] -> [d])").unwrap(),
        parse_cfd(s, "phi3", "([b=2, c=c1] -> [d=d1])").unwrap(), // constant CFD
    ]
}

/// Field-by-field bit equality of two [`Detection`]s.
fn assert_identical(base: &Detection, got: &Detection, label: &str) {
    assert_eq!(base.algorithm, got.algorithm, "{label} algorithm");
    assert_eq!(base.violations.per_cfd.len(), got.violations.per_cfd.len(), "{label} per_cfd");
    for ((na, va), (nb, vb)) in base.violations.per_cfd.iter().zip(&got.violations.per_cfd) {
        assert_eq!(na, nb, "{label} cfd name");
        assert_eq!(va.tids, vb.tids, "{label} Vio({na})");
        assert_eq!(va.patterns, vb.patterns, "{label} Vioπ({na})");
    }
    assert_eq!(base.shipped_tuples, got.shipped_tuples, "{label} |M|");
    assert_eq!(base.shipped_cells, got.shipped_cells, "{label} cells");
    assert_eq!(base.shipped_bytes, got.shipped_bytes, "{label} bytes");
    assert_eq!(base.control_messages, got.control_messages, "{label} control");
    assert_eq!(base.response_time.to_bits(), got.response_time.to_bits(), "{label} time");
    assert_eq!(base.paper_cost.to_bits(), got.paper_cost.to_bits(), "{label} paper");
    assert_eq!(base.site_clocks.len(), got.site_clocks.len(), "{label} clocks");
    for (s, (ca, cb)) in base.site_clocks.iter().zip(&got.site_clocks).enumerate() {
        assert_eq!(ca.to_bits(), cb.to_bits(), "{label} clock of site {s}");
    }
}

const ALGORITHMS: [Algorithm; 3] =
    [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT];

/// One full sweep: rebuild the relation and all four topologies under
/// the given chunk size, run every detector at the given width, return
/// the labelled detections in a fixed order.
fn sweep(chunk: Option<usize>, threads: usize) -> Vec<(String, Detection)> {
    set_chunk_rows(chunk);
    let rel = sample();
    let s = rel.schema().clone();
    let sigma = sigma(&s);
    let cfg = RunConfig::default().with_threads(threads);
    let horizontal = HorizontalPartition::round_robin(&rel, 4).unwrap();
    let vertical =
        VerticalPartition::by_attribute_groups(&rel, &[&["id", "a", "b"], &["c"], &["d"]]).unwrap();
    let hybrid = HybridPartition::new(&horizontal, &[&["id", "a", "b"], &["c", "d"]]).unwrap();
    let replicated = ReplicatedPartition::chained(horizontal.clone(), 2).unwrap();
    set_chunk_rows(None);

    let run = |topo: Topology, alg: Algorithm| {
        DetectRequest::over(topo)
            .cfds(sigma.iter().cloned())
            .algorithm(alg)
            .config(cfg)
            .run()
            .expect("matrix run succeeds")
    };

    let mut out = Vec::new();
    for alg in ALGORITHMS {
        out.push((format!("horizontal/{alg:?}"), run(Topology::from(horizontal.clone()), alg)));
        out.push((format!("hybrid/{alg:?}"), run(Topology::from(hybrid.clone()), alg)));
    }
    out.push((
        "horizontal/SeqDetect".into(),
        run(horizontal.clone().into(), Algorithm::seq_detect()),
    ));
    out.push((
        "horizontal/ClustDetect".into(),
        run(horizontal.clone().into(), Algorithm::clust_detect()),
    ));
    out.push(("replicated".into(), run(replicated.into(), Algorithm::PatDetectS)));
    out.push(("vertical".into(), run(vertical.into(), Algorithm::PatDetectS)));
    out
}

#[test]
fn detections_are_bit_identical_across_widths_and_chunk_sizes() {
    // Baseline: one worker, default chunk size.
    let baseline = sweep(None, 1);
    assert!(
        baseline.iter().any(|(_, d)| !d.violations.all_tids().is_empty()),
        "fixture should contain violations"
    );
    for chunk in [None, Some(7)] {
        for threads in [1usize, 2, 8] {
            if chunk.is_none() && threads == 1 {
                continue; // the baseline itself
            }
            let got = sweep(chunk, threads);
            assert_eq!(baseline.len(), got.len());
            for ((label, base), (label2, d)) in baseline.iter().zip(&got) {
                assert_eq!(label, label2);
                let cell = format!("{label} @threads={threads}, chunk={chunk:?}");
                assert_identical(base, d, &cell);
            }
        }
    }
}
