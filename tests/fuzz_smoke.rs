//! Deterministic mini-fuzz smoke test — the first step toward the
//! ROADMAP fuzz-target item. One seeded generator (the compat
//! `proptest` shim derives its RNG from the test name, so every run
//! replays the same inputs) drives random [`DetectRequest`]s over
//! every topology and random delta streams through
//! [`DetectRequest::session`], round-tripping each result against
//! centralized detection on the (re)materialized relation and pinning
//! pool widths 1 and 8 bit-identical. Unlike the per-topology property
//! suites, everything here goes through the facade only: this is the
//! fuzz surface a future `cargo fuzz`-style harness would hammer.

use distributed_cfd::datagen::{update_stream, UpdateStreamConfig};
use distributed_cfd::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Rows over tiny domains so FD groups collide often.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..40)
}

fn build_relation(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| vals![i as i64, a, b, format!("c{c}"), format!("d{d}")])
            .collect(),
    )
    .unwrap()
}

/// A random CFD over LHS ⊆ {a, b, c}, RHS = d, with wildcard/constant
/// mixes in the tableau.
fn arb_patterns() -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>, Option<u8>)>> {
    prop::collection::vec(
        (prop::option::of(0..4i64), prop::option::of(0..4i64), prop::option::of(0..3u8)),
        1..4,
    )
}

fn build_cfd(
    name: &str,
    patterns: &[(Option<i64>, Option<i64>, Option<u8>)],
    rhs_const: Option<u8>,
) -> Cfd {
    let s = schema();
    let tableau = patterns
        .iter()
        .map(|(a, b, c)| {
            let pv = |o: &Option<i64>| match o {
                Some(v) => PatternValue::constant(*v),
                None => PatternValue::Wild,
            };
            let pc = |o: &Option<u8>| match o {
                Some(v) => PatternValue::constant(format!("c{v}")),
                None => PatternValue::Wild,
            };
            let rhs = match rhs_const {
                Some(v) => PatternValue::constant(format!("d{v}")),
                None => PatternValue::Wild,
            };
            PatternTuple::new(vec![pv(a), pv(b), pc(c)], vec![rhs])
        })
        .collect();
    Cfd::with_names(name, s, &["a", "b", "c"], &["d"], tableau).unwrap()
}

/// One facade run, fully specified.
fn request(
    topology: impl Into<Topology>,
    sigma: &[Cfd],
    algorithm: Algorithm,
    threads: usize,
    mode: ShipMode,
) -> Detection {
    DetectRequest::over(topology)
        .cfds(sigma.iter().cloned())
        .algorithm(algorithm)
        .config(RunConfig::default().with_threads(threads))
        .ship_mode(mode)
        .run()
        .expect("facade run succeeds on generated inputs")
}

/// Field-by-field bit equality of two [`Detection`]s.
fn assert_bit_identical(
    base: &Detection,
    got: &Detection,
    label: &str,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&base.algorithm, &got.algorithm, "{} algorithm", label);
    prop_assert_eq!(base.violations.all_tids(), got.violations.all_tids(), "{} Vio", label);
    prop_assert_eq!(base.shipped_tuples, got.shipped_tuples, "{} |M|", label);
    prop_assert_eq!(base.shipped_cells, got.shipped_cells, "{} cells", label);
    prop_assert_eq!(base.shipped_bytes, got.shipped_bytes, "{} bytes", label);
    prop_assert_eq!(base.control_messages, got.control_messages, "{} control", label);
    prop_assert_eq!(base.control_bytes, got.control_bytes, "{} control bytes", label);
    prop_assert_eq!(base.response_time.to_bits(), got.response_time.to_bits(), "{} time", label);
    prop_assert_eq!(base.paper_cost.to_bits(), got.paper_cost.to_bits(), "{} paper", label);
    prop_assert_eq!(base.site_clocks.len(), got.site_clocks.len(), "{}", label);
    for (s, (ca, cb)) in base.site_clocks.iter().zip(&got.site_clocks).enumerate() {
        prop_assert_eq!(ca.to_bits(), cb.to_bits(), "{} clock of site {}", label, s);
    }
    prop_assert_eq!(&base.metrics, &got.metrics, "{} metrics snapshot", label);
    prop_assert_eq!(&base.trace, &got.trace, "{} trace", label);
    Ok(())
}

/// The registry's shipment mirror must equal the ledger totals the
/// `Detection` carries — on every random request, exactly.
fn assert_metrics_mirror_ledger(d: &Detection, label: &str) -> Result<(), TestCaseError> {
    let pairs = [
        ("dcd_shipped_tuples_total", d.shipped_tuples),
        ("dcd_shipped_cells_total", d.shipped_cells),
        ("dcd_shipped_bytes_total", d.shipped_bytes),
        ("dcd_control_messages_total", d.control_messages),
        ("dcd_control_bytes_total", d.control_bytes),
    ];
    for (family, ledger_total) in pairs {
        prop_assert_eq!(
            d.metrics.counter_total(family),
            ledger_total as u64,
            "{}: {} diverged from the ledger",
            label,
            family
        );
    }
    Ok(())
}

/// A session's live report must equal centralized detection on its own
/// materialized relation — the facade round trip.
fn assert_tracks_centralized(
    session: &IncrementalSession,
    sigma: &[Cfd],
    label: &str,
) -> Result<(), TestCaseError> {
    let rel = session.materialize().expect("reassembly succeeds");
    let global = detect_set(&rel, sigma);
    let report = session.report();
    prop_assert_eq!(report.all_tids(), global.all_tids(), "{} Vio(Σ)", label);
    for (name, vs) in &global.per_cfd {
        let (_, got) =
            report.per_cfd.iter().find(|(n, _)| n == name).expect("every CFD has an entry");
        prop_assert_eq!(&got.tids, &vs.tids, "{} Vio({})", label, name);
        prop_assert_eq!(&got.patterns, &vs.patterns, "{} Vioπ({})", label, name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// A random `DetectRequest` over every topology: pool widths 1 and
    /// 8 are bit-identical on every `Detection` field, and every
    /// topology reports exactly the centralized `Vio(Σ)`.
    #[test]
    fn random_requests_round_trip_over_every_topology(
        rows in arb_rows(),
        patterns1 in arb_patterns(),
        patterns2 in arb_patterns(),
        rhs_const in prop::option::of(0..3u8),
        n_sites in 1usize..5,
        alg_pick in 0usize..5,
        mode_pick in 0usize..2,
        factor_seed in 0usize..100,
        theta in 0.05f64..0.6,
    ) {
        let rel = build_relation(&rows);
        let sigma = vec![
            build_cfd("phi1", &patterns1, None),
            build_cfd("phi2", &patterns2, rhs_const),
        ];
        let oracle = detect_set(&rel, &sigma);
        let alg = [
            Algorithm::CtrDetect,
            Algorithm::PatDetectS,
            Algorithm::PatDetectRT,
            Algorithm::seq_detect(),
            Algorithm::clust_detect(),
        ][alg_pick];
        let mode = [ShipMode::Full, ShipMode::Filtered][mode_pick];

        let horizontal = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let topologies: Vec<(&str, Topology)> = vec![
            ("horizontal", horizontal.clone().into()),
            (
                "hybrid",
                HybridPartition::new(&horizontal, &[&["a", "b"], &["c", "d"]]).unwrap().into(),
            ),
            (
                "replicated",
                ReplicatedPartition::chained(horizontal.clone(), 1 + factor_seed % n_sites)
                    .unwrap()
                    .into(),
            ),
            (
                "vertical",
                VerticalPartition::by_attribute_groups(&rel, &[&["a", "c"], &["b", "d"]])
                    .unwrap()
                    .into(),
            ),
        ];
        for (name, topology) in topologies {
            let d1 = request(topology.clone(), &sigma, alg, 1, mode);
            let d8 = request(topology, &sigma, alg, 8, mode);
            let label = format!("{name}/{alg:?}");
            assert_bit_identical(&d1, &d8, &label)?;
            assert_metrics_mirror_ledger(&d1, &label)?;
            prop_assert_eq!(d1.violations.all_tids(), oracle.all_tids(), "{} Vio(Σ)", label);
        }

        // Route the same request through a mined tableau: refine phi1
        // on the horizontal partition (CodeKey counting), then detect
        // with the refined CFD over horizontal and vertical topologies
        // — the mined constants must round-trip like hand-written ones.
        let simple = sigma[0].clone().simplify().pop().unwrap();
        let outcome = mine_patterns(
            &horizontal,
            &simple,
            &MiningConfig { theta, max_width: 2 },
            &CostModel::default(),
        );
        let mined_sigma = vec![outcome.cfd.to_cfd()];
        let mined_oracle = detect_set(&rel, &mined_sigma);
        let vertical =
            VerticalPartition::by_attribute_groups(&rel, &[&["a", "c"], &["b", "d"]]).unwrap();
        for (name, topology) in
            [("horizontal", Topology::from(horizontal)), ("vertical", vertical.into())]
        {
            let d1 = request(topology.clone(), &mined_sigma, alg, 1, mode);
            let d8 = request(topology, &mined_sigma, alg, 8, mode);
            let label = format!("mined/{name}/{alg:?}");
            assert_bit_identical(&d1, &d8, &label)?;
            assert_metrics_mirror_ledger(&d1, &label)?;
            prop_assert_eq!(
                d1.violations.all_tids(), mined_oracle.all_tids(), "{} Vio(Σ)", label
            );
        }
    }

    /// Random delta streams through `DetectRequest::session` over
    /// horizontal, replicated and vertical topologies: after every
    /// batch, the two horizontal pool widths agree bit for bit, and
    /// after the stream drains every session's maintained report
    /// equals centralized re-detection on its materialized state.
    #[test]
    fn random_delta_streams_round_trip_through_sessions(
        rows in arb_rows(),
        patterns1 in arb_patterns(),
        patterns2 in arb_patterns(),
        rhs_const in prop::option::of(0..3u8),
        n_sites in 1usize..5,
        ops in 4usize..12,
        seed in 0u64..1000,
        insert_ratio in 0.3f64..1.0,
    ) {
        let rel = build_relation(&rows);
        let sigma = vec![
            build_cfd("phi1", &patterns1, None),
            build_cfd("phi2", &patterns2, rhs_const),
        ];
        let horizontal = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let stream = update_stream(&horizontal, &UpdateStreamConfig {
            n_batches: 3,
            ops_per_batch: ops,
            insert_ratio,
            seed,
            ..Default::default()
        });

        let open = |topology: Topology, threads: usize| {
            DetectRequest::over(topology)
                .cfds(sigma.iter().cloned())
                .config(RunConfig::default().with_threads(threads))
                .session()
                .expect("generated topologies support sessions")
        };
        let mut h1 = open(horizontal.clone().into(), 1);
        let mut h8 = open(horizontal.clone().into(), 8);
        let mut rep = open(
            ReplicatedPartition::chained(horizontal.clone(), 1 + seed as usize % n_sites)
                .unwrap()
                .into(),
            1,
        );
        let mut vert = open(
            VerticalPartition::by_attribute_groups(&rel, &[&["a", "c"], &["b", "d"]])
                .unwrap()
                .into(),
            1,
        );

        for batch in stream {
            let batch = DeltaBatch::from(batch);
            let r1 = h1.apply_batch(&batch).unwrap();
            let r8 = h8.apply_batch(&batch).unwrap();
            prop_assert_eq!(r1.all_tids(), r8.all_tids(), "widths diverged mid-stream");
            rep.apply_batch(&batch).unwrap();
            vert.apply_batch(&batch).unwrap();
        }
        assert_bit_identical(&h1.detection(), &h8.detection(), "horizontal session")?;
        for (label, session) in
            [("horizontal", &h1), ("replicated", &rep), ("vertical", &vert)]
        {
            assert_tracks_centralized(session, &sigma, label)?;
            assert_metrics_mirror_ledger(&session.detection(), &format!("{label} session"))?;
        }
    }
}
