//! Golden-file pin of the Prometheus text exposition: one small
//! deterministic run (the `observability` example's exact setup) must
//! reproduce `tests/golden/observability_exposition.txt` byte for
//! byte, and every line of it must parse under the exposition-format
//! line grammar — `# HELP`/`# TYPE` headers followed by
//! `name{labels} value` samples whose family a header declared first.

use distributed_cfd::prelude::*;
use std::collections::BTreeMap;

const GOLDEN: &str = include_str!("golden/observability_exposition.txt");

/// The `observability` example's run, reproduced exactly.
fn example_detection() -> Detection {
    let schema = Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap();
    let rel = Relation::from_rows(
        schema.clone(),
        (0..60)
            .map(|i| vals![i, i % 3, i % 5, format!("c{}", if i % 7 == 0 { 9 } else { i % 2 })])
            .collect(),
    )
    .unwrap();
    let sigma = vec![
        parse_cfd(&schema, "phi1", "([a, b] -> [c])").unwrap(),
        parse_cfd(&schema, "phi2", "([a=1, b] -> [c=c1])").unwrap(),
    ];
    let partition = HorizontalPartition::round_robin(&rel, 3).unwrap();
    DetectRequest::over(partition).cfds(sigma).algorithm(Algorithm::PatDetectS).run().unwrap()
}

#[test]
fn exposition_matches_the_golden_byte_for_byte() {
    let exposed = example_detection().metrics.expose();
    assert_eq!(exposed, GOLDEN, "regenerate with `cargo run --example observability`");
}

/// A metric name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn is_metric_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
        && s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Splits `name{k="v",..}` into the name and its label block.
fn split_labels(series: &str) -> (&str, Option<&str>) {
    match series.find('{') {
        Some(i) => (&series[..i], Some(&series[i..])),
        None => (series, None),
    }
}

#[test]
fn every_golden_line_parses() {
    // family name -> declared kind, filled by `# TYPE` lines.
    let mut kinds: BTreeMap<&str, &str> = BTreeMap::new();
    let mut samples = 0usize;
    for (no, line) in GOLDEN.lines().enumerate() {
        let at = || format!("line {}: {line:?}", no + 1);
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let (name, help) = rest.split_once(' ').unwrap_or_else(|| panic!("{}", at()));
            assert!(is_metric_name(name), "{}", at());
            assert!(!help.trim().is_empty(), "HELP without text; {}", at());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let (name, kind) = rest.split_once(' ').unwrap_or_else(|| panic!("{}", at()));
            assert!(is_metric_name(name), "{}", at());
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind {kind}; {}",
                at()
            );
            assert!(kinds.insert(name, kind).is_none(), "family declared twice; {}", at());
        } else {
            let (series, value) = line.rsplit_once(' ').unwrap_or_else(|| panic!("{}", at()));
            value.parse::<f64>().unwrap_or_else(|_| panic!("unparseable value; {}", at()));
            let (name, labels) = split_labels(series);
            assert!(is_metric_name(name), "{}", at());
            // A histogram family's samples carry _bucket/_sum/_count
            // suffixes; everything else samples the family name itself.
            let family = ["_bucket", "_sum", "_count"]
                .iter()
                .find_map(|suf| name.strip_suffix(suf).filter(|b| kinds.contains_key(b)))
                .unwrap_or(name);
            assert!(kinds.contains_key(family), "sample before its TYPE header; {}", at());
            if let Some(block) = labels {
                let inner = block
                    .strip_prefix('{')
                    .and_then(|b| b.strip_suffix('}'))
                    .unwrap_or_else(|| panic!("unbalanced label block; {}", at()));
                for pair in inner.split(',') {
                    let (k, v) = pair.split_once('=').unwrap_or_else(|| panic!("{}", at()));
                    assert!(is_metric_name(k), "{}", at());
                    assert!(
                        v.len() >= 2 && v.starts_with('"') && v.ends_with('"'),
                        "unquoted label value; {}",
                        at()
                    );
                }
            }
            samples += 1;
        }
    }
    assert!(samples > 20, "golden should carry a full run's samples, got {samples}");
    assert!(kinds.contains_key("dcd_shipped_tuples_total"), "ledger mirror family missing");
    assert!(kinds.contains_key("dcd_kernel_groups_total"), "kernel family missing");
    assert!(kinds.contains_key("dcd_run_response_seconds"), "run-summary gauge missing");
}
