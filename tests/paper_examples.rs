//! Integration tests pinning the paper's worked examples exactly:
//! Example 1 (violations of cfd1–cfd5 in D0), Example 4 (constant CFDs
//! checked locally), Example 5 (CTRDETECT ships 4 tuples for φ1 on the
//! Fig. 1(b) partition) and Example 6 (PATDETECTS ships 3).

use distributed_cfd::prelude::*;

/// Runs one facade request over a horizontal partition.
fn detect_on(
    partition: &HorizontalPartition,
    sigma: &[Cfd],
    algorithm: Algorithm,
    cfg: &RunConfig,
) -> Detection {
    DetectRequest::over(partition.clone())
        .cfds(sigma.iter().cloned())
        .algorithm(algorithm)
        .config(*cfg)
        .run()
        .expect("paper fixtures are valid requests")
}

fn emp_schema() -> std::sync::Arc<Schema> {
    Schema::builder("emp")
        .attr("id", ValueType::Int)
        .attr("name", ValueType::Str)
        .attr("title", ValueType::Str)
        .attr("CC", ValueType::Int)
        .attr("AC", ValueType::Int)
        .attr("phn", ValueType::Int)
        .attr("street", ValueType::Str)
        .attr("city", ValueType::Str)
        .attr("zip", ValueType::Str)
        .attr("salary", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Fig. 1(a): the instance D0. Row index i holds tuple t(i+1).
fn d0() -> Relation {
    Relation::from_rows(
        emp_schema(),
        vec![
            vals![1, "Sam", "DMTS", 44, 131, 8765432, "Princess Str.", "EDI", "EH2 4HF", "95k"],
            vals![2, "Mike", "MTS", 44, 131, 1234567, "Mayfield", "NYC", "EH4 8LE", "80k"],
            vals![3, "Rick", "DMTS", 44, 131, 3456789, "Mayfield", "NYC", "EH4 8LE", "95k"],
            vals![4, "Philip", "DMTS", 44, 131, 2909209, "Crichton", "EDI", "EH4 8LE", "95k"],
            vals![5, "Adam", "VP", 44, 131, 7478626, "Mayfield", "EDI", "EH4 8LE", "200k"],
            vals![6, "Joe", "MTS", 1, 908, 1416282, "Mtn Ave", "NYC", "07974", "110k"],
            vals![7, "Bob", "DMTS", 1, 908, 2345678, "Mtn Ave", "MH", "07974", "150k"],
            vals![8, "Jef", "DMTS", 31, 20, 8765432, "Muntplein", "AMS", "1012 WR", "90k"],
            vals![9, "Steven", "MTS", 31, 20, 1425364, "Spuistraat", "AMS", "1012 WR", "75k"],
            vals![10, "Bram", "MTS", 31, 10, 2536475, "Kruisplein", "ROT", "3012 CC", "75k"],
        ],
    )
    .unwrap()
}

/// φ1 of Example 2: cfd1 and cfd2 merged into one tableau.
fn phi1(schema: &std::sync::Arc<Schema>) -> Cfd {
    let cfd1 = parse_cfd(schema, "cfd1", "([CC=44, zip] -> [street])").unwrap();
    let cfd2 = parse_cfd(schema, "cfd2", "([CC=31, zip] -> [street])").unwrap();
    Cfd::merge("phi1", &[&cfd1, &cfd2]).unwrap()
}

/// Fig. 1(b): the horizontal partition by title (MTS / DMTS / VP).
fn fig1b(rel: &Relation) -> HorizontalPartition {
    let title = rel.schema().require("title").unwrap();
    HorizontalPartition::by_predicates(
        rel,
        vec![
            Predicate::atom(Atom::eq(title, "MTS")),
            Predicate::atom(Atom::eq(title, "DMTS")),
            Predicate::atom(Atom::eq(title, "VP")),
        ],
    )
    .unwrap()
}

fn one_based(tids: &dcd_relation::FxHashSet<TupleId>) -> Vec<u64> {
    let mut ids: Vec<u64> = tids.iter().map(|t| t.0 + 1).collect();
    ids.sort();
    ids
}

#[test]
fn example1_centralized_violations() {
    let schema = emp_schema();
    let rel = d0();
    let sigma = vec![
        parse_cfd(&schema, "cfd1", "([CC=44, zip] -> [street])").unwrap(),
        parse_cfd(&schema, "cfd2", "([CC=31, zip] -> [street])").unwrap(),
        parse_cfd(&schema, "cfd3", "([CC, title] -> [salary])").unwrap(),
        parse_cfd(&schema, "cfd4", "([CC=44, AC=131] -> [city=EDI])").unwrap(),
        parse_cfd(&schema, "cfd5", "([CC=1, AC=908] -> [city=MH])").unwrap(),
    ];
    let report = detect_set(&rel, &sigma);
    assert_eq!(one_based(&report.all_tids()), vec![2, 3, 4, 5, 6, 8, 9]);
    // D0 ⊨ cfd3 (the FD) — stated explicitly in Example 1.
    assert!(satisfies(&rel, &sigma[2]));
}

#[test]
fn example4_constant_cfds_checked_locally() {
    let schema = emp_schema();
    let rel = d0();
    let partition = fig1b(&rel);
    let psi1 = parse_cfd(&schema, "psi1", "([CC=44, AC=131] -> [city=EDI])").unwrap();
    let psi2 = parse_cfd(&schema, "psi2", "([CC=1, AC=908] -> [city=MH])").unwrap();
    let cfg = RunConfig::default();
    for cfd in [&psi1, &psi2] {
        let d = detect_on(&partition, std::slice::from_ref(cfd), Algorithm::PatDetectS, &cfg);
        assert_eq!(d.shipped_tuples, 0, "constant CFDs must not ship");
    }
    // t2, t3 violate ψ1; t6 violates ψ2 (Example 4).
    let d1 = detect_on(&partition, std::slice::from_ref(&psi1), Algorithm::PatDetectS, &cfg);
    assert_eq!(one_based(&d1.violations.all_tids()), vec![2, 3]);
    let d2 = detect_on(&partition, std::slice::from_ref(&psi2), Algorithm::PatDetectS, &cfg);
    assert_eq!(one_based(&d2.violations.all_tids()), vec![6]);
}

/// Example 5: the coordinator for φ1 is S2 (4 matching tuples vs 3 and
/// 1); S1 ships {t2, t9, t10} and S3 ships {t5} — 4 tuples total.
#[test]
fn example5_ctrdetect_ships_four_tuples() {
    let schema = emp_schema();
    let rel = d0();
    let partition = fig1b(&rel);
    let d = detect_on(&partition, &[phi1(&schema)], Algorithm::CtrDetect, &RunConfig::default());
    assert_eq!(d.shipped_tuples, 4);
    // φ1's violations are found intact.
    assert_eq!(one_based(&d.violations.all_tids()), vec![2, 3, 4, 5, 8, 9]);
}

/// Example 6: per-pattern coordinators — S2 for (44, _), S1 for (31, _)
/// — reduce the total shipment to 3 tuples.
#[test]
fn example6_patdetects_ships_three_tuples() {
    let schema = emp_schema();
    let rel = d0();
    let partition = fig1b(&rel);
    let d = detect_on(&partition, &[phi1(&schema)], Algorithm::PatDetectS, &RunConfig::default());
    assert_eq!(d.shipped_tuples, 3);
    assert_eq!(one_based(&d.violations.all_tids()), vec![2, 3, 4, 5, 8, 9]);
}

/// Each tuple/attribute is shipped at most once (§IV guarantee): for φ1
/// only the CC, zip, street cells of matching tuples move, plus the
/// row-identifying tuple id.
///
/// Accounting note: before the code-native wire port, a shipped row
/// counted `|X ∪ A|` value cells (3 here) and its bytes were the sum
/// of string payload lengths. Rows now travel as `(tid, codes)` —
/// `TID_CELLS` (= 2) id cells plus one `u32` code per attribute — so
/// the same 3-tuple shipment is 3 × (3 + 2) = 15 cells, and bytes are
/// exact: `CODE_BYTES` (= 4) per cell.
#[test]
fn shipment_is_projected_and_bounded() {
    let schema = emp_schema();
    let rel = d0();
    let partition = fig1b(&rel);
    let d = detect_on(&partition, &[phi1(&schema)], Algorithm::PatDetectS, &RunConfig::default());
    // 3 tuples × (3 attributes (CC, zip, street) + 2 tid cells).
    assert_eq!(d.shipped_cells, 3 * (3 + TID_CELLS));
    assert_eq!(d.shipped_bytes, d.shipped_cells * CODE_BYTES);
    let d_ctr =
        detect_on(&partition, &[phi1(&schema)], Algorithm::CtrDetect, &RunConfig::default());
    assert_eq!(d_ctr.shipped_cells, 4 * (3 + TID_CELLS));
    assert_eq!(d_ctr.shipped_bytes, d_ctr.shipped_cells * CODE_BYTES);
}

/// The full Σ, distributed: every algorithm reproduces Example 1.
#[test]
fn all_algorithms_reproduce_example1_on_fig1b() {
    let schema = emp_schema();
    let rel = d0();
    let partition = fig1b(&rel);
    let sigma = vec![
        phi1(&schema),
        parse_cfd(&schema, "phi2", "([CC, title] -> [salary])").unwrap(),
        Cfd::merge(
            "phi3",
            &[
                &parse_cfd(&schema, "cfd4", "([CC=44, AC=131] -> [city=EDI])").unwrap(),
                &parse_cfd(&schema, "cfd5", "([CC=1, AC=908] -> [city=MH])").unwrap(),
            ],
        )
        .unwrap(),
    ];
    let cfg = RunConfig::default();
    let expected = vec![2, 3, 4, 5, 6, 8, 9];

    for alg in [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT] {
        let mut all = dcd_relation::FxHashSet::default();
        for cfd in &sigma {
            let d = detect_on(&partition, std::slice::from_ref(cfd), alg, &cfg);
            all.extend(d.violations.all_tids());
        }
        assert_eq!(one_based(&all), expected, "{alg:?}");
    }
    for alg in [Algorithm::seq_detect(), Algorithm::clust_detect()] {
        let d = detect_on(&partition, &sigma, alg, &cfg);
        assert_eq!(one_based(&d.violations.all_tids()), expected, "{alg:?}");
    }
}
