//! Chunked ≡ flat storage semantics, pinned at chunk seams.
//!
//! A [`Relation`]'s columns are sequences of fixed-size dense chunks
//! (`DCD_CHUNK_ROWS`); every public operation must behave as if the
//! column were one flat array. These proptests rebuild the same data
//! under a tiny chunk size (so every operation crosses seams) and under
//! a chunk size larger than the data (one flat chunk), then drive
//! `code_rows`, delta application (`retain_rows` + chunk-tail appends
//! under the hood) and point reads across both layouts, demanding
//! identical results — including on ranges that straddle chunk
//! boundaries.

use distributed_cfd::prelude::*;
use distributed_cfd::relation::set_chunk_rows;
use proptest::prelude::*;
use std::sync::{Arc, Mutex, MutexGuard};

/// `set_chunk_rows` is process-global; serialize every test that pokes
/// it so layouts never leak between concurrently running cases.
fn chunk_lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    match GUARD.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

fn build(rows: &[(i64, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter().enumerate().map(|(i, &(a, b))| vals![i, a, format!("b{b}")]).collect(),
    )
    .unwrap()
}

/// Full observable state of a relation: per-row `(tid, codes over all
/// attributes)` — layout-independent iff chunking is semantically
/// invisible.
fn snapshot(rel: &Relation) -> Vec<(TupleId, Box<[u32]>)> {
    rel.code_rows(&all_attrs(rel), &(0..rel.len()).collect::<Vec<_>>())
}

fn all_attrs(rel: &Relation) -> Vec<distributed_cfd::relation::AttrId> {
    (0..rel.schema().arity() as u16).map(distributed_cfd::relation::AttrId).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `code_rows` over arbitrary row subsets (including seam-straddling
    /// runs) is identical chunked vs flat.
    #[test]
    fn code_rows_ignores_chunk_layout(
        rows in prop::collection::vec((0..5i64, 0..4u8), 1..60),
        chunk in 1..9usize,
        picks in prop::collection::vec(0..60usize, 0..30),
    ) {
        let _guard = chunk_lock();
        set_chunk_rows(Some(chunk));
        let chunked = build(&rows);
        set_chunk_rows(Some(1 << 20)); // one flat chunk
        let flat = build(&rows);
        set_chunk_rows(None);

        prop_assert!(chunked.n_chunks() >= flat.n_chunks());
        let subset: Vec<usize> = picks.into_iter().filter(|&i| i < rows.len()).collect();
        let attrs = all_attrs(&chunked);
        prop_assert_eq!(chunked.code_rows(&attrs, &subset), flat.code_rows(&attrs, &subset));
        prop_assert_eq!(snapshot(&chunked), snapshot(&flat));
    }

    /// Deltas whose deletes and inserts straddle chunk seams leave the
    /// chunked and flat relations in identical states (`retain_rows`
    /// compaction + tail appends across chunk boundaries).
    #[test]
    fn apply_delta_ignores_chunk_layout(
        rows in prop::collection::vec((0..5i64, 0..4u8), 4..50),
        chunk in 1..7usize,
        del_picks in prop::collection::vec(0..50usize, 1..12),
        ins in prop::collection::vec((0..5i64, 0..4u8), 1..12),
    ) {
        let _guard = chunk_lock();
        let mut tids: Vec<TupleId> = Vec::new();
        let mut mk = |chunk_rows: usize| {
            set_chunk_rows(Some(chunk_rows));
            let rel = build(&rows);
            tids = rel.tuples().iter().map(|t| t.tid).collect();
            rel
        };
        let mut chunked = mk(chunk);
        let mut flat = mk(1 << 20);
        set_chunk_rows(None);

        let mut delta = RelationDelta::default();
        let mut deleted = std::collections::BTreeSet::new();
        for p in del_picks {
            if let Some(&tid) = tids.get(p % tids.len()) {
                if deleted.insert(tid) {
                    delta.deletes.push(tid);
                }
            }
        }
        for (j, &(a, b)) in ins.iter().enumerate() {
            let id = 10_000 + j as i64;
            delta.inserts.push(Tuple::new(
                TupleId((20_000 + j) as u64),
                vals![id, a, format!("b{b}")],
            ));
        }

        let eff_c = chunked.apply_delta(&delta).unwrap();
        let eff_f = flat.apply_delta(&delta).unwrap();
        prop_assert_eq!(eff_c, eff_f);
        prop_assert_eq!(chunked.len(), flat.len());
        prop_assert_eq!(snapshot(&chunked), snapshot(&flat));
    }

    /// Point reads at every position — in particular the first and last
    /// row of every chunk — agree with the flat layout.
    #[test]
    fn point_reads_agree_at_every_seam(
        rows in prop::collection::vec((0..5i64, 0..4u8), 1..40),
        chunk in 1..6usize,
    ) {
        let _guard = chunk_lock();
        set_chunk_rows(Some(chunk));
        let chunked = build(&rows);
        set_chunk_rows(Some(1 << 20));
        let flat = build(&rows);
        set_chunk_rows(None);

        for attr in 0..chunked.schema().arity() as u16 {
            let a = distributed_cfd::relation::AttrId(attr);
            let vc = chunked.column(a).codes();
            let vf = flat.column(a).codes();
            for i in 0..chunked.len() {
                prop_assert_eq!(vc.at(i), vf.at(i), "attr {} row {}", attr, i);
            }
        }
    }
}
