//! Property-based tests: on randomly generated relations, CFDs and
//! partitions, every distributed algorithm computes exactly the
//! violations of centralized detection, ships within its bounds, and
//! mining never changes results.

use distributed_cfd::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .build()
        .unwrap()
}

/// Rows over tiny domains so FD groups collide often.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..60)
}

fn build_relation(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter().map(|&(a, b, c, d)| vals![a, b, format!("c{c}"), format!("d{d}")]).collect(),
    )
    .unwrap()
}

/// Runs one facade request over a horizontal partition.
fn run_on(
    partition: &HorizontalPartition,
    sigma: &[Cfd],
    algorithm: Algorithm,
    cfg: &RunConfig,
) -> Detection {
    DetectRequest::over(partition.clone())
        .cfds(sigma.iter().cloned())
        .algorithm(algorithm)
        .config(*cfg)
        .run()
        .expect("generated requests are valid")
}

const SINGLE_CFD_ALGORITHMS: [Algorithm; 3] =
    [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT];

/// A random normalized CFD over the schema: LHS ⊆ {a, b, c}, RHS = d,
/// patterns mixing wildcards and small constants.
fn arb_cfd() -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>, Option<u8>)>> {
    // Each element is one pattern row: constants or None (wildcard) per
    // LHS attribute.
    prop::collection::vec(
        (prop::option::of(0..4i64), prop::option::of(0..4i64), prop::option::of(0..3u8)),
        1..5,
    )
}

fn build_cfd(patterns: &[(Option<i64>, Option<i64>, Option<u8>)], rhs_const: Option<u8>) -> Cfd {
    let s = schema();
    let tableau = patterns
        .iter()
        .map(|(a, b, c)| {
            let pv = |o: &Option<i64>| match o {
                Some(v) => PatternValue::constant(*v),
                None => PatternValue::Wild,
            };
            let pc = |o: &Option<u8>| match o {
                Some(v) => PatternValue::constant(format!("c{v}")),
                None => PatternValue::Wild,
            };
            let rhs = match rhs_const {
                Some(v) => PatternValue::constant(format!("d{v}")),
                None => PatternValue::Wild,
            };
            PatternTuple::new(vec![pv(a), pv(b), pc(c)], vec![rhs])
        })
        .collect();
    Cfd::with_names("prop", s, &["a", "b", "c"], &["d"], tableau).unwrap()
}

/// Compares two [`Detection`]s field by field, requiring *bit*
/// equality on every f64 (clocks included) — the pool's determinism
/// guarantee, not an epsilon match.
fn assert_detections_identical(
    base: &Detection,
    got: &Detection,
    name: &str,
    threads: usize,
) -> Result<(), TestCaseError> {
    let label = format!("{name} @ {threads} threads");
    prop_assert_eq!(&base.violations.all_tids(), &got.violations.all_tids(), "{} Vio", &label);
    prop_assert_eq!(base.violations.per_cfd.len(), got.violations.per_cfd.len(), "{}", &label);
    for ((na, va), (nb, vb)) in base.violations.per_cfd.iter().zip(&got.violations.per_cfd) {
        prop_assert_eq!(na, nb, "{}", &label);
        prop_assert_eq!(&va.tids, &vb.tids, "{} per-CFD Vio", &label);
        prop_assert_eq!(&va.patterns, &vb.patterns, "{} Vioπ", &label);
    }
    prop_assert_eq!(base.shipped_tuples, got.shipped_tuples, "{} |M|", &label);
    prop_assert_eq!(base.shipped_cells, got.shipped_cells, "{} cells", &label);
    prop_assert_eq!(base.shipped_bytes, got.shipped_bytes, "{} bytes", &label);
    prop_assert_eq!(base.control_messages, got.control_messages, "{} control", &label);
    prop_assert_eq!(
        base.paper_cost.to_bits(),
        got.paper_cost.to_bits(),
        "{} paper_cost {} vs {}",
        &label,
        base.paper_cost,
        got.paper_cost
    );
    prop_assert_eq!(
        base.response_time.to_bits(),
        got.response_time.to_bits(),
        "{} response_time {} vs {}",
        &label,
        base.response_time,
        got.response_time
    );
    prop_assert_eq!(base.site_clocks.len(), got.site_clocks.len(), "{}", &label);
    for (s, (ca, cb)) in base.site_clocks.iter().zip(&got.site_clocks).enumerate() {
        prop_assert_eq!(
            ca.to_bits(),
            cb.to_bits(),
            "{} clock of site {}: {} vs {}",
            &label,
            s,
            ca,
            cb
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-CFD algorithms ≡ centralized detection, any partition.
    #[test]
    fn distributed_equals_centralized(
        rows in arb_rows(),
        patterns in arb_cfd(),
        rhs_const in prop::option::of(0..3u8),
        n_sites in 1usize..6,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd(&patterns, rhs_const);
        let global = detect(&rel, &cfd);
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let cfg = RunConfig::default();
        for alg in SINGLE_CFD_ALGORITHMS {
            let d = run_on(&partition, std::slice::from_ref(&cfd), alg, &cfg);
            prop_assert_eq!(&d.violations.all_tids(), &global.tids, "{:?}", alg);
            let (_, vs) = d.violations.per_cfd.first().expect("entry exists even when clean");
            prop_assert_eq!(&vs.patterns, &global.patterns, "{:?} Vioπ", alg);
        }
    }

    /// Multi-CFD algorithms ≡ centralized. (No shipment comparison here:
    /// CLUSTDETECT's Z-projected patterns are more general than each
    /// member's own patterns, so on adversarial tableaus clustering can
    /// ship tuples no member CFD needs — the paper's savings are a
    /// property of its overlapping workloads, pinned separately in the
    /// workload tests.)
    #[test]
    fn multi_cfd_equals_centralized(
        rows in arb_rows(),
        patterns1 in arb_cfd(),
        patterns2 in arb_cfd(),
        n_sites in 1usize..5,
    ) {
        let rel = build_relation(&rows);
        let s = schema();
        let cfd1 = build_cfd(&patterns1, None);
        // Second CFD with contained LHS {a, b} → city-free projection.
        let tableau2 = patterns2
            .iter()
            .map(|(a, b, _)| {
                let pv = |o: &Option<i64>| match o {
                    Some(v) => PatternValue::constant(*v),
                    None => PatternValue::Wild,
                };
                PatternTuple::new(vec![pv(a), pv(b)], vec![PatternValue::Wild])
            })
            .collect();
        let cfd2 = Cfd::with_names("prop2", s, &["a", "b"], &["c"], tableau2).unwrap();
        let sigma = vec![cfd1, cfd2];
        let global = detect_set(&rel, &sigma);
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let cfg = RunConfig::default();
        let seq = run_on(&partition, &sigma, Algorithm::seq_detect(), &cfg);
        let clust = run_on(&partition, &sigma, Algorithm::clust_detect(), &cfg);
        prop_assert_eq!(&seq.violations.all_tids(), &global.all_tids());
        prop_assert_eq!(&clust.violations.all_tids(), &global.all_tids());
        for (name, vs) in &global.per_cfd {
            let (_, got) = clust.violations.per_cfd.iter().find(|(n, _)| n == name).unwrap();
            prop_assert_eq!(&got.tids, &vs.tids, "CLUSTDETECT per-CFD {}", name);
        }
    }

    /// Shipment bounds: nothing ships with one site; with more sites the
    /// per-pattern algorithms never ship more tuples than exist, and
    /// constant CFDs ship nothing.
    #[test]
    fn shipment_invariants(
        rows in arb_rows(),
        patterns in arb_cfd(),
        n_sites in 1usize..6,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd(&patterns, Some(1)); // constant RHS
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let cfg = RunConfig::default();
        let d = run_on(&partition, std::slice::from_ref(&cfd), Algorithm::PatDetectS, &cfg);
        prop_assert_eq!(d.shipped_tuples, 0, "constant CFDs are local");

        let var = build_cfd(&patterns, None);
        let d = run_on(&partition, std::slice::from_ref(&var), Algorithm::PatDetectS, &cfg);
        prop_assert!(d.shipped_tuples <= rel.len());
        if n_sites == 1 {
            prop_assert_eq!(d.shipped_tuples, 0);
        }
    }

    /// Mining refinement never changes detection results.
    #[test]
    fn mining_preserves_semantics(
        rows in arb_rows(),
        theta in 0.05f64..1.0,
        n_sites in 1usize..4,
    ) {
        let rel = build_relation(&rows);
        let fd = Cfd::fd("fd", schema(), &["a", "b"], &["d"]).unwrap();
        let simple = fd.simplify().pop().unwrap();
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let cfg = RunConfig::default();
        let outcome = mine_patterns(
            &partition,
            &simple,
            &MiningConfig { theta, max_width: 2 },
            &cfg.cost,
        );
        let plain = detect_simple(&rel, &simple);
        let refined = detect_simple(&rel, &outcome.cfd);
        prop_assert_eq!(&plain.tids, &refined.tids);
        // And distributed detection on the refined CFD agrees too.
        let d = run_on(&partition, &[outcome.cfd.to_cfd()], Algorithm::PatDetectS, &cfg);
        prop_assert_eq!(&d.violations.all_tids(), &plain.tids);
    }

    /// The columnar detector (`detect_simple`, running on dictionary
    /// codes) computes exactly what the row-reference detector
    /// (`detect_among` over all tuples) computes — the refactor's core
    /// equivalence, on arbitrary relations and tableaux.
    #[test]
    fn columnar_detector_equals_row_reference(
        rows in arb_rows(),
        patterns in arb_cfd(),
        rhs_const in prop::option::of(0..3u8),
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd(&patterns, rhs_const);
        for simple in cfd.simplify() {
            let columnar = detect_simple(&rel, &simple);
            let refs: Vec<&Tuple> = rel.iter().collect();
            let rowwise = dcd_cfd::detect_among(&refs, &simple);
            prop_assert_eq!(&columnar.tids, &rowwise.tids);
            prop_assert_eq!(&columnar.patterns, &rowwise.patterns);
        }
    }

    /// Encode → decode round-trip preserves detection end to end: all
    /// five detectors (CTRDETECT, PATDETECTS, PATDETECTRT, SEQDETECT,
    /// CLUSTDETECT) report identical violation sets *and* shipment
    /// counts on the original relation and on one rebuilt from its
    /// decoded cells (fresh dictionaries, codes re-assigned).
    #[test]
    fn detectors_identical_after_columnar_round_trip(
        rows in arb_rows(),
        patterns in arb_cfd(),
        n_sites in 1usize..5,
    ) {
        let rel = build_relation(&rows);
        let decoded: Vec<Vec<Value>> = (0..rel.len())
            .map(|i| rel.columns().iter().map(|c| c.decode(i)).collect())
            .collect();
        let rebuilt = Relation::from_rows(schema(), decoded).unwrap();

        let cfd = build_cfd(&patterns, None);
        let sigma = vec![cfd.clone()];
        let cfg = RunConfig::default();
        let part_a = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let part_b = HorizontalPartition::round_robin(&rebuilt, n_sites).unwrap();

        for alg in SINGLE_CFD_ALGORITHMS {
            let a = run_on(&part_a, std::slice::from_ref(&cfd), alg, &cfg);
            let b = run_on(&part_b, std::slice::from_ref(&cfd), alg, &cfg);
            prop_assert_eq!(a.violations.all_tids(), b.violations.all_tids(), "{:?}", alg);
            for ((na, va), (nb, vb)) in a.violations.per_cfd.iter().zip(&b.violations.per_cfd) {
                prop_assert_eq!(na, nb);
                prop_assert_eq!(&va.patterns, &vb.patterns, "{:?} Vioπ", alg);
            }
            prop_assert_eq!(a.shipped_tuples, b.shipped_tuples, "{:?} |M|", alg);
            prop_assert_eq!(a.shipped_cells, b.shipped_cells, "{:?} cells", alg);
        }
        for alg in [Algorithm::seq_detect(), Algorithm::clust_detect()] {
            let a = run_on(&part_a, &sigma, alg, &cfg);
            let b = run_on(&part_b, &sigma, alg, &cfg);
            prop_assert_eq!(a.violations.all_tids(), b.violations.all_tids(), "{:?}", alg);
            prop_assert_eq!(a.shipped_tuples, b.shipped_tuples, "{:?} |M|", alg);
            prop_assert_eq!(a.shipped_cells, b.shipped_cells, "{:?} cells", alg);
        }
    }

    /// The scoped thread pool never changes anything: for pool sizes
    /// {1, 2, 8}, all five detectors produce identical violation
    /// reports, ledger totals (tuples / cells / bytes / control
    /// messages), paper cost, and bit-identical response time and
    /// per-site clock values — on both round-robin and predicate
    /// partitions (the latter exercising the partitioning-condition
    /// exclusion from the statistics exchange).
    #[test]
    fn pool_size_never_changes_results(
        rows in arb_rows(),
        patterns in arb_cfd(),
        n_sites in 2usize..5,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd(&patterns, None);
        let sigma = vec![cfd.clone()];
        let a = rel.schema().require("a").unwrap();
        let round_robin = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let by_pred = HorizontalPartition::by_predicates(
            &rel,
            (0..4i64).map(|v| Predicate::atom(Atom::eq(a, v))).collect(),
        )
        .unwrap();
        for partition in [&round_robin, &by_pred] {
            let sequential = RunConfig::default().with_threads(1);
            for alg in SINGLE_CFD_ALGORITHMS {
                let name = format!("{alg:?}");
                let base = run_on(partition, std::slice::from_ref(&cfd), alg, &sequential);
                for threads in [2usize, 8] {
                    let cfg = RunConfig::default().with_threads(threads);
                    let got = run_on(partition, std::slice::from_ref(&cfd), alg, &cfg);
                    assert_detections_identical(&base, &got, &name, threads)?;
                }
            }
            for alg in [Algorithm::seq_detect(), Algorithm::clust_detect()] {
                let name = format!("{alg:?}");
                let base = run_on(partition, &sigma, alg, &sequential);
                for threads in [2usize, 8] {
                    let cfg = RunConfig::default().with_threads(threads);
                    let got = run_on(partition, &sigma, alg, &cfg);
                    assert_detections_identical(&base, &got, &name, threads)?;
                }
            }
        }
    }

    /// Response time is monotone-ish in the obvious direction: shipping
    /// and checking anything takes positive time; the paper-formula cost
    /// dominates the per-site clock model.
    #[test]
    fn cost_model_sanity(
        rows in arb_rows(),
        patterns in arb_cfd(),
        n_sites in 2usize..6,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd(&patterns, None);
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let d = run_on(&partition, std::slice::from_ref(&cfd), Algorithm::PatDetectRT, &RunConfig::default());
        prop_assert!(d.response_time >= 0.0);
        prop_assert!(d.paper_cost >= 0.0);
        prop_assert!(d.response_time.is_finite());
    }
}
