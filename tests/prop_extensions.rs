//! Property-based tests for the §VIII extensions: hybrid-fragmentation
//! detection and replication-aware detection are equivalent to
//! centralized detection on random inputs, and replication never
//! increases traffic.

use distributed_cfd::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Runs one facade request (`PATDETECTS` strategy, like the legacy
/// entry points these properties were first pinned against).
fn run_on(topology: impl Into<Topology>, sigma: &[Cfd], cfg: &RunConfig) -> Detection {
    DetectRequest::over(topology)
        .cfds(sigma.iter().cloned())
        .algorithm(Algorithm::PatDetectS)
        .config(*cfg)
        .run()
        .expect("generated requests are valid")
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..50)
}

fn build(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| vals![i, a, b, format!("c{c}"), format!("d{d}")])
            .collect(),
    )
    .unwrap()
}

fn arb_cfd_pick() -> impl Strategy<Value = usize> {
    0usize..4
}

fn pick_cfd(s: &Arc<Schema>, which: usize) -> Cfd {
    match which {
        0 => parse_cfd(s, "f", "([a, b] -> [c])").unwrap(),
        1 => parse_cfd(s, "f", "([a=1, b] -> [d])").unwrap(),
        2 => parse_cfd(s, "f", "([c] -> [d])").unwrap(),
        _ => parse_cfd(s, "f", "([a=2, c] -> [d=d0])").unwrap(),
    }
}

/// Bit-level equality of two [`Detection`]s (clocks included) — the
/// pool determinism guarantee for the §VIII extensions.
fn assert_identical(
    base: &Detection,
    got: &Detection,
    threads: usize,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(&base.violations.all_tids(), &got.violations.all_tids(), "{}", threads);
    prop_assert_eq!(base.shipped_tuples, got.shipped_tuples, "{} |M|", threads);
    prop_assert_eq!(base.shipped_cells, got.shipped_cells, "{} cells", threads);
    prop_assert_eq!(base.shipped_bytes, got.shipped_bytes, "{} bytes", threads);
    prop_assert_eq!(base.control_messages, got.control_messages, "{} control", threads);
    prop_assert_eq!(base.paper_cost.to_bits(), got.paper_cost.to_bits(), "{} paper", threads);
    prop_assert_eq!(
        base.response_time.to_bits(),
        got.response_time.to_bits(),
        "{} response",
        threads
    );
    prop_assert_eq!(base.site_clocks.len(), got.site_clocks.len(), "{}", threads);
    for (s, (ca, cb)) in base.site_clocks.iter().zip(&got.site_clocks).enumerate() {
        prop_assert_eq!(ca.to_bits(), cb.to_bits(), "{} threads, clock of site {}", threads, s);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hybrid detection ≡ centralized on random data / CFD / shape.
    #[test]
    fn hybrid_equals_centralized(
        rows in arb_rows(),
        which in arb_cfd_pick(),
        n_cells in 1usize..4,
        split_point in 1usize..4,
    ) {
        let rel = build(&rows);
        let s = schema();
        let cfd = pick_cfd(&s, which);
        let global = detect(&rel, &cfd);
        let names = ["a", "b", "c", "d"];
        let left: Vec<&str> = names[..split_point].to_vec();
        let right: Vec<&str> = names[split_point..].to_vec();
        let horizontal = HorizontalPartition::round_robin(&rel, n_cells).unwrap();
        let hybrid = HybridPartition::new(&horizontal, &[&left, &right]).unwrap();
        let d = run_on(hybrid, std::slice::from_ref(&cfd), &RunConfig::default());
        prop_assert_eq!(&d.violations.all_tids(), &global.tids);
    }

    /// Replicated detection ≡ centralized, and shipment is antitone in
    /// the replication factor.
    #[test]
    fn replication_equals_centralized_and_saves(
        rows in arb_rows(),
        which in arb_cfd_pick(),
        n_sites in 2usize..5,
    ) {
        let rel = build(&rows);
        let s = schema();
        let cfd = pick_cfd(&s, which);
        let global = detect(&rel, &cfd);
        let base = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let mut last = usize::MAX;
        for r in 1..=n_sites {
            let replicated = ReplicatedPartition::chained(base.clone(), r).unwrap();
            let d = run_on(replicated, std::slice::from_ref(&cfd), &RunConfig::default());
            prop_assert_eq!(&d.violations.all_tids(), &global.tids, "r = {}", r);
            prop_assert!(d.shipped_tuples <= last, "r = {}", r);
            last = d.shipped_tuples;
        }
        prop_assert_eq!(last, 0, "full replication must ship nothing");
    }

    /// Pool-size determinism for the §VIII extensions, which the main
    /// determinism suite (over the five horizontal detectors) does not
    /// cover: hybrid detection's parallel per-cell gather and
    /// replicated detection's pooled phases produce bit-identical
    /// outputs — ledger totals, paper cost, per-site clocks — for pool
    /// sizes {1, 2, 8}.
    #[test]
    fn pool_size_never_changes_hybrid_or_replicated(
        rows in arb_rows(),
        which in arb_cfd_pick(),
        n_cells in 2usize..4,
    ) {
        let rel = build(&rows);
        let s = schema();
        let cfd = pick_cfd(&s, which);
        let sigma = std::slice::from_ref(&cfd);
        let sequential = RunConfig::default().with_threads(1);

        let horizontal = HorizontalPartition::round_robin(&rel, n_cells).unwrap();
        let hybrid = HybridPartition::new(&horizontal, &[&["a", "b"], &["c", "d"]]).unwrap();
        let hybrid_base = run_on(hybrid.clone(), sigma, &sequential);

        let replicated = ReplicatedPartition::chained(horizontal.clone(), 2).unwrap();
        let rep_base = run_on(replicated.clone(), sigma, &sequential);

        for threads in [2usize, 8] {
            let cfg = RunConfig::default().with_threads(threads);
            let h = run_on(hybrid.clone(), sigma, &cfg);
            assert_identical(&hybrid_base, &h, threads)?;
            let r = run_on(replicated.clone(), sigma, &cfg);
            assert_identical(&rep_base, &r, threads)?;
        }
    }

    /// Hybrid reassembly invariant: the partition always restores the
    /// original relation.
    #[test]
    fn hybrid_reassembles(rows in arb_rows(), n_cells in 1usize..4) {
        let rel = build(&rows);
        let horizontal = HorizontalPartition::round_robin(&rel, n_cells).unwrap();
        let hybrid =
            HybridPartition::new(&horizontal, &[&["a", "b"], &["c", "d"]]).unwrap();
        let back = hybrid.reassemble().unwrap();
        prop_assert_eq!(back.len(), rel.len());
        let id = rel.schema().require("id").unwrap();
        for t in back.iter() {
            let orig = rel.iter().find(|o| o.get(id) == t.get(id)).unwrap();
            prop_assert_eq!(t.values(), orig.values());
        }
    }
}
