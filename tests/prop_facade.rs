//! Façade equivalence: `DetectRequest` is pinned **bit-identical** to
//! the engine functions it fronts — `run_batch` for the three
//! single-CFD detectors, `run_seq`/`run_clust` for the multi-CFD
//! algorithms, and `run_hybrid`/`run_replicated`/`run_vertical` for the
//! other topologies — at pool widths 1 and 8, on random relations, CFDs
//! and partitions. Every field of the [`Detection`] must match, f64s
//! compared by bits (the determinism contract, not an epsilon match).
//! The pre-façade `detect_*`/`Detector::run*` shims are gone; this
//! suite is what keeps the façade honest against the engines directly.

use distributed_cfd::core::{run_batch, run_clust, run_hybrid, run_replicated, run_seq};
use distributed_cfd::prelude::*;
use distributed_cfd::vertical::run_vertical;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Rows over tiny domains so FD groups collide often.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..40)
}

fn build_relation(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| vals![i, a, b, format!("c{c}"), format!("d{d}")])
            .collect(),
    )
    .unwrap()
}

/// A random CFD over the schema: LHS ⊆ {a, b, c}, RHS = d, patterns
/// mixing wildcards and small constants; optionally a constant RHS.
fn arb_patterns() -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>, Option<u8>)>> {
    prop::collection::vec(
        (prop::option::of(0..4i64), prop::option::of(0..4i64), prop::option::of(0..3u8)),
        1..4,
    )
}

fn build_cfd(
    name: &str,
    patterns: &[(Option<i64>, Option<i64>, Option<u8>)],
    rhs_const: Option<u8>,
) -> Cfd {
    let s = schema();
    let tableau = patterns
        .iter()
        .map(|(a, b, c)| {
            let pv = |o: &Option<i64>| match o {
                Some(v) => PatternValue::constant(*v),
                None => PatternValue::Wild,
            };
            let pc = |o: &Option<u8>| match o {
                Some(v) => PatternValue::constant(format!("c{v}")),
                None => PatternValue::Wild,
            };
            let rhs = match rhs_const {
                Some(v) => PatternValue::constant(format!("d{v}")),
                None => PatternValue::Wild,
            };
            PatternTuple::new(vec![pv(a), pv(b), pc(c)], vec![rhs])
        })
        .collect();
    Cfd::with_names(name, s, &["a", "b", "c"], &["d"], tableau).unwrap()
}

/// Field-by-field bit equality of two [`Detection`]s.
fn assert_identical(base: &Detection, got: &Detection, label: &str) -> Result<(), TestCaseError> {
    prop_assert_eq!(&base.algorithm, &got.algorithm, "{} algorithm", label);
    prop_assert_eq!(base.violations.per_cfd.len(), got.violations.per_cfd.len(), "{}", label);
    for ((na, va), (nb, vb)) in base.violations.per_cfd.iter().zip(&got.violations.per_cfd) {
        prop_assert_eq!(na, nb, "{}", label);
        prop_assert_eq!(&va.tids, &vb.tids, "{} Vio", label);
        prop_assert_eq!(&va.patterns, &vb.patterns, "{} Vioπ", label);
    }
    prop_assert_eq!(base.shipped_tuples, got.shipped_tuples, "{} |M|", label);
    prop_assert_eq!(base.shipped_cells, got.shipped_cells, "{} cells", label);
    prop_assert_eq!(base.shipped_bytes, got.shipped_bytes, "{} bytes", label);
    prop_assert_eq!(base.control_messages, got.control_messages, "{} control", label);
    prop_assert_eq!(base.response_time.to_bits(), got.response_time.to_bits(), "{} time", label);
    prop_assert_eq!(base.paper_cost.to_bits(), got.paper_cost.to_bits(), "{} paper", label);
    prop_assert_eq!(base.site_clocks.len(), got.site_clocks.len(), "{}", label);
    for (s, (ca, cb)) in base.site_clocks.iter().zip(&got.site_clocks).enumerate() {
        prop_assert_eq!(ca.to_bits(), cb.to_bits(), "{} clock of site {}", label, s);
    }
    Ok(())
}

fn facade(
    topology: impl Into<Topology>,
    sigma: &[Cfd],
    algorithm: Algorithm,
    cfg: RunConfig,
    mode: ShipMode,
) -> Detection {
    DetectRequest::over(topology)
        .cfds(sigma.iter().cloned())
        .algorithm(algorithm)
        .config(cfg)
        .ship_mode(mode)
        .run()
        .expect("facade run succeeds on generated inputs")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Horizontal topology: all five detectors, façade ≡ engine, pool
    /// widths 1 and 8.
    #[test]
    fn facade_matches_engine_horizontal(
        rows in arb_rows(),
        pats in arb_patterns(),
        rhs_const in prop::option::of(0..3u8),
        pats2 in arb_patterns(),
        n_sites in 1..5usize,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd("p1", &pats, rhs_const);
        let cfd2 = build_cfd("p2", &pats2, None);
        let sigma = vec![cfd.clone(), cfd2];
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        for threads in [1usize, 8] {
            let cfg = RunConfig::default().with_threads(threads);
            // The three single-CFD detectors (one CFD, like the engine).
            for (alg, det) in [
                (Algorithm::CtrDetect, &CtrDetect as &dyn Detector),
                (Algorithm::PatDetectS, &PatDetectS),
                (Algorithm::PatDetectRT, &PatDetectRT),
            ] {
                let engine = run_batch(&partition, &cfd.simplify(), det.strategy(), &cfg);
                let new = facade(
                    partition.clone(),
                    std::slice::from_ref(&cfd),
                    alg,
                    cfg,
                    ShipMode::Full,
                );
                assert_identical(&engine, &new, &format!("{} @{threads}", det.name()))?;
            }
            // The two multi-CFD detectors (two CFDs).
            let inner = CoordinatorStrategy::MinResponseTime;
            let engine = run_seq(&partition, &sigma, inner, &cfg);
            let new = facade(partition.clone(), &sigma, Algorithm::seq_detect(), cfg, ShipMode::Full);
            assert_identical(&engine, &new, &format!("SEQDETECT @{threads}"))?;
            let engine = run_clust(&partition, &sigma, inner, &cfg);
            let new =
                facade(partition.clone(), &sigma, Algorithm::clust_detect(), cfg, ShipMode::Full);
            assert_identical(&engine, &new, &format!("CLUSTDETECT @{threads}"))?;
        }
    }

    /// Replicated topology: façade ≡ `run_replicated` at factors 1–3.
    #[test]
    fn facade_matches_engine_replicated(
        rows in arb_rows(),
        pats in arb_patterns(),
        factor in 1..4usize,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd("p", &pats, None);
        let base = HorizontalPartition::round_robin(&rel, 3).unwrap();
        let replicated = ReplicatedPartition::chained(base, factor.min(3)).unwrap();
        for threads in [1usize, 8] {
            let cfg = RunConfig::default().with_threads(threads);
            let engine = run_replicated(&replicated, std::slice::from_ref(&cfd), &cfg);
            let new = facade(
                replicated.clone(),
                std::slice::from_ref(&cfd),
                Algorithm::PatDetectS,
                cfg,
                ShipMode::Full,
            );
            assert_identical(&engine, &new, &format!("REPDETECT @{threads}"))?;
        }
    }

    /// Hybrid topology: façade ≡ `run_hybrid` for every strategy.
    #[test]
    fn facade_matches_engine_hybrid(
        rows in arb_rows(),
        pats in arb_patterns(),
        n_cells in 1..4usize,
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd("p", &pats, None);
        let horizontal = HorizontalPartition::round_robin(&rel, n_cells).unwrap();
        let hybrid = HybridPartition::new(&horizontal, &[&["a", "b"], &["c", "d"]]).unwrap();
        for threads in [1usize, 8] {
            let cfg = RunConfig::default().with_threads(threads);
            for (alg, strategy) in [
                (Algorithm::CtrDetect, CoordinatorStrategy::Central),
                (Algorithm::PatDetectS, CoordinatorStrategy::MinShipment),
                (Algorithm::PatDetectRT, CoordinatorStrategy::MinResponseTime),
            ] {
                let engine =
                    run_hybrid(&hybrid, std::slice::from_ref(&cfd), strategy, &cfg).unwrap();
                let new = facade(
                    hybrid.clone(),
                    std::slice::from_ref(&cfd),
                    alg,
                    cfg,
                    ShipMode::Full,
                );
                assert_identical(&engine, &new, &format!("HYBRID {strategy:?} @{threads}"))?;
            }
        }
    }

    /// Vertical topology: façade ≡ `run_vertical`, both ship modes,
    /// every field bit-identical.
    #[test]
    fn facade_matches_engine_vertical(
        rows in arb_rows(),
        pats in arb_patterns(),
        rhs_const in prop::option::of(0..3u8),
    ) {
        let rel = build_relation(&rows);
        let cfd = build_cfd("p", &pats, rhs_const);
        let partition =
            VerticalPartition::by_attribute_groups(&rel, &[&["a", "b"], &["c"], &["d"]]).unwrap();
        for mode in [ShipMode::Full, ShipMode::Filtered] {
            let cfg = RunConfig::default();
            let engine =
                run_vertical(&partition, std::slice::from_ref(&cfd), mode, &cfg).unwrap();
            let new = facade(
                partition.clone(),
                std::slice::from_ref(&cfd),
                Algorithm::PatDetectS,
                cfg,
                mode,
            );
            assert_identical(&engine, &new, &format!("VERTICAL {mode:?}"))?;
        }
    }
}
