//! Incremental-vs-full equivalence properties: after *every prefix* of
//! a generated delta stream, the incremental report must equal full
//! re-detection on the materialized state — checked against the
//! centralized detector and all five distributed detectors — and the
//! incremental run itself must be bit-identical (reports, ledger
//! totals, paper cost, per-site clocks) at pool widths 1 and 8.

use distributed_cfd::datagen::{update_stream, UpdateStreamConfig};
use distributed_cfd::prelude::*;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Rows over tiny domains so FD groups collide often.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..40)
}

fn build_relation(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| vals![i as i64, a, b, format!("c{c}"), format!("d{d}")])
            .collect(),
    )
    .unwrap()
}

/// A random CFD over LHS ⊆ {a, b, c}, RHS = d, with wildcard/constant
/// mixes in the tableau.
fn arb_cfd() -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>, Option<u8>)>> {
    prop::collection::vec(
        (prop::option::of(0..4i64), prop::option::of(0..4i64), prop::option::of(0..3u8)),
        1..4,
    )
}

fn build_cfd(
    name: &str,
    patterns: &[(Option<i64>, Option<i64>, Option<u8>)],
    rhs_const: Option<u8>,
) -> Cfd {
    let s = schema();
    let tableau = patterns
        .iter()
        .map(|(a, b, c)| {
            let pv = |o: &Option<i64>| match o {
                Some(v) => PatternValue::constant(*v),
                None => PatternValue::Wild,
            };
            let pc = |o: &Option<u8>| match o {
                Some(v) => PatternValue::constant(format!("c{v}")),
                None => PatternValue::Wild,
            };
            let rhs = match rhs_const {
                Some(v) => PatternValue::constant(format!("d{v}")),
                None => PatternValue::Wild,
            };
            PatternTuple::new(vec![pv(a), pv(b), pc(c)], vec![rhs])
        })
        .collect();
    Cfd::with_names(name, s, &["a", "b", "c"], &["d"], tableau).unwrap()
}

fn assert_equals_full_redetection(
    run: &IncrementalRun,
    sigma: &[Cfd],
) -> Result<(), TestCaseError> {
    let report = run.report();
    // Centralized full re-detection on the materialized relation.
    let rel = run.materialize().expect("reassembly succeeds");
    let global = detect_set(&rel, sigma);
    prop_assert_eq!(report.all_tids(), global.all_tids(), "centralized Vio(Σ)");
    for (name, vs) in &global.per_cfd {
        let (_, got) =
            report.per_cfd.iter().find(|(n, _)| n == name).expect("every CFD has an entry");
        prop_assert_eq!(&got.tids, &vs.tids, "Vio({})", name);
        prop_assert_eq!(&got.patterns, &vs.patterns, "Vioπ({})", name);
    }
    // All five distributed detectors on the materialized partition.
    let cfg = RunConfig::default();
    let run_alg = |alg: Algorithm, sigma: &[Cfd]| {
        DetectRequest::over(run.partition().clone())
            .cfds(sigma.iter().cloned())
            .algorithm(alg)
            .config(cfg)
            .run()
            .expect("materialized partitions are valid requests")
    };
    for alg in [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT] {
        for cfd in sigma {
            let d = run_alg(alg, std::slice::from_ref(cfd));
            let full = detect(&rel, cfd);
            prop_assert_eq!(&d.violations.all_tids(), &full.tids, "{:?}", alg);
        }
    }
    for alg in [Algorithm::seq_detect(), Algorithm::clust_detect()] {
        let d = run_alg(alg, sigma);
        prop_assert_eq!(d.violations.all_tids(), report.all_tids(), "{:?}", alg);
        for (name, vs) in &report.per_cfd {
            let (_, got) = d
                .violations
                .per_cfd
                .iter()
                .find(|(n, _)| n == name)
                .expect("every CFD has an entry");
            prop_assert_eq!(&got.tids, &vs.tids, "{:?} Vio({})", alg, name);
            prop_assert_eq!(&got.patterns, &vs.patterns, "{:?} Vioπ({})", alg, name);
        }
    }
    Ok(())
}

fn assert_runs_bit_identical(a: &IncrementalRun, b: &IncrementalRun) -> Result<(), TestCaseError> {
    let (da, db) = (a.detection(), b.detection());
    prop_assert_eq!(da.violations.all_tids(), db.violations.all_tids());
    prop_assert_eq!(da.shipped_tuples, db.shipped_tuples, "|M|");
    prop_assert_eq!(da.shipped_cells, db.shipped_cells, "cells");
    prop_assert_eq!(da.shipped_bytes, db.shipped_bytes, "bytes");
    prop_assert_eq!(da.control_messages, db.control_messages, "control");
    prop_assert_eq!(
        da.paper_cost.to_bits(),
        db.paper_cost.to_bits(),
        "paper_cost {} vs {}",
        da.paper_cost,
        db.paper_cost
    );
    prop_assert_eq!(
        da.response_time.to_bits(),
        db.response_time.to_bits(),
        "response_time {} vs {}",
        da.response_time,
        db.response_time
    );
    for (s, (ca, cb)) in da.site_clocks.iter().zip(&db.site_clocks).enumerate() {
        prop_assert_eq!(ca.to_bits(), cb.to_bits(), "clock of site {}: {} vs {}", s, ca, cb);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every prefix of the delta stream: the incremental report
    /// equals full re-detection (centralized + all five detectors) on
    /// the materialized state; pool widths 1 and 8 agree bit for bit
    /// on everything; and a fresh index rebuild reproduces the
    /// maintained state.
    #[test]
    fn incremental_equals_full_after_every_prefix(
        rows in arb_rows(),
        patterns1 in arb_cfd(),
        patterns2 in arb_cfd(),
        rhs_const in prop::option::of(0..3u8),
        n_sites in 1usize..5,
        ops in 4usize..16,
        seed in 0u64..1000,
        insert_ratio in 0.3f64..1.0,
    ) {
        let rel = build_relation(&rows);
        let sigma = vec![
            build_cfd("phi1", &patterns1, None),
            build_cfd("phi2", &patterns2, rhs_const),
        ];
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let stream = update_stream(&partition, &UpdateStreamConfig {
            n_batches: 3,
            ops_per_batch: ops,
            insert_ratio,
            seed,
            ..Default::default()
        });
        let mut run1 = IncrementalRun::new(
            partition.clone(), &sigma, RunConfig::default().with_threads(1)).unwrap();
        let mut run8 = IncrementalRun::new(
            partition, &sigma, RunConfig::default().with_threads(8)).unwrap();
        assert_equals_full_redetection(&run1, &sigma)?;
        for batch in stream {
            let batch = DeltaBatch::from(batch);
            let out1 = run1.apply_batch(&batch).unwrap();
            let out8 = run8.apply_batch(&batch).unwrap();
            prop_assert_eq!(out1.paper_cost.to_bits(), out8.paper_cost.to_bits());
            assert_runs_bit_identical(&run1, &run8)?;
            assert_equals_full_redetection(&run1, &sigma)?;
            // A from-scratch index build on the materialized state
            // reproduces the maintained report and index geometry.
            let rebuilt = IncrementalRun::new(
                run1.partition().clone(), &sigma, RunConfig::default().with_threads(1)).unwrap();
            prop_assert_eq!(rebuilt.report().all_tids(), run1.report().all_tids());
            prop_assert_eq!(rebuilt.index_key_counts(), run1.index_key_counts());
        }
    }

    /// Replicated runs produce the same reports as plain horizontal
    /// runs on the same stream, at every replication factor.
    #[test]
    fn replication_factor_never_changes_reports(
        rows in arb_rows(),
        patterns in arb_cfd(),
        n_sites in 2usize..5,
        factor_seed in 0usize..100,
        seed in 0u64..1000,
    ) {
        let rel = build_relation(&rows);
        let sigma = vec![build_cfd("phi", &patterns, None)];
        let base = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let factor = 1 + factor_seed % n_sites;
        let rep = ReplicatedPartition::chained(base.clone(), factor).unwrap();
        let stream = update_stream(&base, &UpdateStreamConfig {
            n_batches: 2, ops_per_batch: 10, seed, ..Default::default()
        });
        let mut plain = IncrementalRun::new(base, &sigma, RunConfig::default()).unwrap();
        let mut replicated =
            IncrementalRun::new_replicated(&rep, &sigma, RunConfig::default()).unwrap();
        for batch in stream {
            let batch = DeltaBatch::from(batch);
            let a = plain.apply_batch(&batch).unwrap();
            let b = replicated.apply_batch(&batch).unwrap();
            prop_assert_eq!(a.report.all_tids(), b.report.all_tids());
        }
        assert_equals_full_redetection(&replicated, &sigma)?;
    }

    /// Vertical incremental runs track centralized detection on the
    /// reassembled relation after every whole-tuple delta.
    #[test]
    fn vertical_incremental_tracks_centralized(
        rows in arb_rows(),
        patterns in arb_cfd(),
        rhs_const in prop::option::of(0..3u8),
        seed in 0u64..1000,
    ) {
        let rel = build_relation(&rows);
        let sigma = vec![build_cfd("phi", &patterns, rhs_const)];
        // The CFD spans both vertical fragments: {a, c} vs {b, d}.
        let partition =
            VerticalPartition::by_attribute_groups(&rel, &[&["a", "c"], &["b", "d"]]).unwrap();
        let single = HorizontalPartition::round_robin(&rel, 1).unwrap();
        let stream = update_stream(&single, &UpdateStreamConfig {
            n_batches: 3, ops_per_batch: 8, seed, ..Default::default()
        });
        let mut run =
            VerticalIncrementalRun::new(partition, &sigma, RunConfig::default()).unwrap();
        for batch in stream {
            let delta = DeltaBatch::from(batch).flatten();
            let out = run.apply_batch(&delta).unwrap();
            let rel_now = run.materialize().expect("reassembly succeeds");
            let global = detect_set(&rel_now, &sigma);
            prop_assert_eq!(out.report.all_tids(), global.all_tids());
            for (name, vs) in &global.per_cfd {
                let (_, got) =
                    out.report.per_cfd.iter().find(|(n, _)| n == name).expect("entry");
                prop_assert_eq!(&got.tids, &vs.tids, "Vio({})", name);
                prop_assert_eq!(&got.patterns, &vs.patterns, "Vioπ({})", name);
            }
        }
    }
}
