//! Kernel and mined-tableau equivalence properties, the PR 8 pinning
//! suite: (1) `validate_group` — the one group-validation kernel every
//! detector now instantiates — matches a naive spelling of the paper's
//! per-group semantics on arbitrary spec lists; (2) the kernel's three
//! instantiations (columnar `detect_simple`, row-wise `detect_among`,
//! code-native `detect_among_codes`) agree tuple-for-tuple and
//! pattern-for-pattern on random relations; (3) an incrementally
//! maintained [`MinedTableau`] equals a full re-mine of the
//! materialized partition after *every prefix* of a generated delta
//! stream — both on the raw [`IncrementalRun`] and through the
//! [`IncrementalSession`] facade.

use distributed_cfd::cfd::{
    detect_among, detect_among_codes, validate_group, CodeLayout, GroupVerdict, RhsSpec,
};
use distributed_cfd::datagen::{update_stream, UpdateStreamConfig};
use distributed_cfd::prelude::*;
use distributed_cfd::relation::AttrId;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Rows over tiny domains so FD groups collide often.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..40)
}

fn build_relation(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| vals![i as i64, a, b, format!("c{c}"), format!("d{d}")])
            .collect(),
    )
    .unwrap()
}

/// A random CFD over LHS ⊆ {a, b, c}, RHS = d, with wildcard/constant
/// mixes in the tableau.
fn arb_cfd() -> impl Strategy<Value = Vec<(Option<i64>, Option<i64>, Option<u8>)>> {
    prop::collection::vec(
        (prop::option::of(0..4i64), prop::option::of(0..4i64), prop::option::of(0..3u8)),
        1..4,
    )
}

fn build_cfd(
    name: &str,
    patterns: &[(Option<i64>, Option<i64>, Option<u8>)],
    rhs_const: Option<u8>,
) -> Cfd {
    let s = schema();
    let tableau = patterns
        .iter()
        .map(|(a, b, c)| {
            let pv = |o: &Option<i64>| match o {
                Some(v) => PatternValue::constant(*v),
                None => PatternValue::Wild,
            };
            let pc = |o: &Option<u8>| match o {
                Some(v) => PatternValue::constant(format!("c{v}")),
                None => PatternValue::Wild,
            };
            let rhs = match rhs_const {
                Some(v) => PatternValue::constant(format!("d{v}")),
                None => PatternValue::Wild,
            };
            PatternTuple::new(vec![pv(a), pv(b), pc(c)], vec![rhs])
        })
        .collect();
    Cfd::with_names(name, s, &["a", "b", "c"], &["d"], tableau).unwrap()
}

/// The paper's per-group semantics, spelled out naively: a variable
/// pattern flags the whole group iff it holds ≥2 distinct RHS values; a
/// constant pattern flags each member whose RHS differs from the
/// constant (plus the whole group under strict mode when the FD also
/// conflicts). No laziness, no early exit — the oracle the kernel must
/// match.
fn naive_group_flags(specs: &[RhsSpec<u32>], rhs: &[u32], strict: bool) -> Vec<bool> {
    let distinct: std::collections::HashSet<u32> = rhs.iter().copied().collect();
    let conflict = distinct.len() > 1;
    let mut all = false;
    let mut flags = vec![false; rhs.len()];
    for spec in specs {
        match spec {
            RhsSpec::Wild => all |= conflict,
            RhsSpec::Const(c) => {
                all |= strict && conflict;
                for (f, r) in flags.iter_mut().zip(rhs) {
                    if r != c {
                        *f = true;
                    }
                }
            }
        }
    }
    if all {
        vec![true; rhs.len()]
    } else {
        flags
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `validate_group` equals the naive per-group semantics for every
    /// mix of wild/constant RHS specs, member multiset and strictness.
    #[test]
    fn validate_group_matches_naive_semantics(
        specs in prop::collection::vec(prop::option::of(0..4u32), 1..5),
        rhs in prop::collection::vec(0..4u32, 1..8),
        strict in any::<bool>(),
    ) {
        let specs: Vec<RhsSpec<u32>> = specs
            .iter()
            .map(|o| match o {
                Some(c) => RhsSpec::Const(*c),
                None => RhsSpec::Wild,
            })
            .collect();
        let verdict = validate_group(specs.iter().copied(), rhs.len(), |fi| rhs[fi], strict);
        let want = naive_group_flags(&specs, &rhs, strict);
        for (fi, w) in want.iter().enumerate() {
            prop_assert_eq!(
                verdict.member_flagged(fi), *w,
                "member {} of {:?} under {:?} (strict={})", fi, rhs, specs, strict
            );
        }
        prop_assert_eq!(verdict.any_flagged(), want.contains(&true));
        if let GroupVerdict::Mixed(flags) = &verdict {
            prop_assert!(flags.contains(&true), "Mixed verdicts carry ≥1 flag");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The kernel's three accessor instantiations — columnar over the
    /// whole relation, row-wise over `&Tuple`s, code-native over
    /// shipped `(tid, codes)` rows — compute identical `Vio` and `Vioπ`.
    #[test]
    fn kernel_instantiations_agree_on_random_relations(
        rows in arb_rows(),
        patterns in arb_cfd(),
        rhs_const in prop::option::of(0..3u8),
    ) {
        let rel = build_relation(&rows);
        for simple in build_cfd("phi", &patterns, rhs_const).simplify() {
            let columnar = detect_simple(&rel, &simple);
            let tuples: Vec<&Tuple> = rel.iter().collect();
            let row_wise = detect_among(&tuples, &simple);
            let attrs: Vec<AttrId> = simple.shipped_attrs();
            let indices: Vec<usize> = (0..rel.len()).collect();
            let code_rows = rel.code_rows(&attrs, &indices);
            let layout = CodeLayout::of_relation(&rel, &attrs);
            let code_native = detect_among_codes(&code_rows, &simple, &layout);
            prop_assert_eq!(&columnar.tids, &row_wise.tids, "columnar vs row-wise Vio");
            prop_assert_eq!(&columnar.patterns, &row_wise.patterns, "columnar vs row-wise Vioπ");
            prop_assert_eq!(&columnar.tids, &code_native.tids, "columnar vs codes Vio");
            prop_assert_eq!(&columnar.patterns, &code_native.patterns, "columnar vs codes Vioπ");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// After every prefix of the delta stream, the incrementally
    /// maintained mined tableau — ±1 support updates from each batch's
    /// `DeltaEffect`s — refines to exactly the CFD a full re-mine of
    /// the materialized partition produces, and the
    /// `IncrementalSession` facade reports the same thing.
    #[test]
    fn maintained_mined_tableau_equals_full_remine_after_every_prefix(
        rows in arb_rows(),
        patterns in arb_cfd(),
        n_sites in 1usize..5,
        ops in 4usize..16,
        seed in 0u64..1000,
        insert_ratio in 0.3f64..1.0,
        theta in 0.05f64..0.6,
        max_width in 1usize..4,
    ) {
        let rel = build_relation(&rows);
        // Wild RHS keeps the tableau variable, so mined constants are
        // subsumable and actually get emitted.
        let cfd = build_cfd("phi", &patterns, None);
        let simple = cfd.clone().simplify().pop().unwrap();
        let config = MiningConfig { theta, max_width };
        let sigma = vec![cfd.clone()];
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let stream = update_stream(&partition, &UpdateStreamConfig {
            n_batches: 3,
            ops_per_batch: ops,
            insert_ratio,
            seed,
            ..Default::default()
        });
        let mut run =
            IncrementalRun::new(partition.clone(), &sigma, RunConfig::default()).unwrap();
        let id = run.track_mining(&simple, &config);
        let mut session = DetectRequest::over(partition)
            .cfd(cfd)
            .session()
            .expect("horizontal partitions support sessions");
        let sid = session.track_mining(&simple, &config).expect("horizontal sessions mine");

        let check = |run: &IncrementalRun, session: &IncrementalSession|
            -> Result<(), TestCaseError> {
            let (got, added) = run.mined_cfd(id);
            let (want, want_added) =
                MinedTableau::build(run.partition(), &simple, &config).refine();
            prop_assert_eq!(&got.tableau, &want.tableau, "maintained vs re-mined tableau");
            prop_assert_eq!(&got.name, &want.name);
            prop_assert_eq!(added, want_added, "mined-pattern count");
            let (via_session, session_added) = session.mined_cfd(sid);
            prop_assert_eq!(&via_session.tableau, &got.tableau, "facade vs raw run");
            prop_assert_eq!(session_added, added);
            Ok(())
        };
        check(&run, &session)?;
        for batch in stream {
            let batch = DeltaBatch::from(batch);
            run.apply_batch(&batch).unwrap();
            session.apply_batch(&batch).unwrap();
            check(&run, &session)?;
        }
    }
}
