//! The observability determinism contract, pinned as a matrix: for
//! every detector × every topology, the [`Detection`]'s frozen
//! `metrics` snapshot and its `trace` span set must be bit-identical
//! across pool widths {1, 8} × chunk sizes {257 rows, 64Ki rows}.
//! Metrics are accumulated by order-free atomics and spans are
//! timestamped from `SiteClocks` snapshots, so nothing the scheduler
//! does (who runs which morsel, stolen or not, chunked how) may reach
//! either artifact. Host-scoped pool metrics (`dcd_pool_*`) live in
//! `host_registry()` precisely because they *do* vary with scheduling;
//! this suite pins everything that does not.

use distributed_cfd::prelude::*;
use distributed_cfd::relation::set_chunk_rows;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// ~300 rows over tiny domains: plenty of FD collisions and, at chunk
/// size 257, at least two chunks per site fragment.
fn sample() -> Relation {
    Relation::from_rows(
        schema(),
        (0..300)
            .map(|i| {
                vals![
                    i,
                    i % 3,
                    i % 5,
                    format!("c{}", i % 4),
                    format!("d{}", if i % 7 == 0 { 9 } else { i % 2 })
                ]
            })
            .collect(),
    )
    .unwrap()
}

fn sigma(s: &Arc<Schema>) -> Vec<Cfd> {
    vec![
        parse_cfd(s, "phi1", "([a, b] -> [d])").unwrap(),
        parse_cfd(s, "phi2", "([a=1, c] -> [d])").unwrap(),
        parse_cfd(s, "phi3", "([b=2, c=c1] -> [d=d1])").unwrap(),
    ]
}

fn algorithms() -> [Algorithm; 5] {
    [
        Algorithm::CtrDetect,
        Algorithm::PatDetectS,
        Algorithm::PatDetectRT,
        Algorithm::seq_detect(),
        Algorithm::clust_detect(),
    ]
}

/// One full sweep under a chunk size and pool width: every detector
/// over every topology, labelled, in a fixed order.
fn sweep(chunk: Option<usize>, threads: usize) -> Vec<(String, Detection)> {
    set_chunk_rows(chunk);
    let rel = sample();
    let s = rel.schema().clone();
    let sigma = sigma(&s);
    let horizontal = HorizontalPartition::round_robin(&rel, 4).unwrap();
    let vertical =
        VerticalPartition::by_attribute_groups(&rel, &[&["id", "a", "b"], &["c"], &["d"]]).unwrap();
    let hybrid = HybridPartition::new(&horizontal, &[&["id", "a", "b"], &["c", "d"]]).unwrap();
    let replicated = ReplicatedPartition::chained(horizontal.clone(), 2).unwrap();
    set_chunk_rows(None);

    let cfg = RunConfig::default().with_threads(threads);
    let mut out = Vec::new();
    for alg in algorithms() {
        let topologies: [(&str, Topology); 4] = [
            ("horizontal", horizontal.clone().into()),
            ("vertical", vertical.clone().into()),
            ("hybrid", hybrid.clone().into()),
            ("replicated", replicated.clone().into()),
        ];
        for (name, topo) in topologies {
            let d = DetectRequest::over(topo)
                .cfds(sigma.iter().cloned())
                .algorithm(alg)
                .config(cfg)
                .run()
                .expect("matrix run succeeds");
            out.push((format!("{name}/{alg:?}"), d));
        }
    }
    out
}

/// Every run must carry the uniform observability surface: the ledger
/// mirror, the kernel family, the run-summary gauges, and a non-empty
/// span set whose timestamps agree with the final site clocks.
fn assert_surface(label: &str, d: &Detection) {
    for family in [
        "dcd_shipped_tuples_total",
        "dcd_shipped_cells_total",
        "dcd_shipped_bytes_total",
        "dcd_control_messages_total",
        "dcd_control_bytes_total",
    ] {
        assert!(
            d.metrics.value(family, "").is_some()
                || d.metrics.families.iter().any(|f| f.name == family),
            "{label}: missing ledger-mirror family {family}"
        );
    }
    assert_eq!(
        d.metrics.counter_total("dcd_shipped_tuples_total"),
        d.shipped_tuples as u64,
        "{label}: shipment mirror diverged from the ledger"
    );
    assert!(
        d.metrics.value("dcd_run_response_seconds", "").is_some(),
        "{label}: missing run-summary gauge"
    );
    assert!(!d.trace.spans.is_empty(), "{label}: no spans recorded");
    let horizon = d.site_clocks.iter().fold(0.0f64, |m, &c| m.max(c));
    for span in &d.trace.spans {
        assert!(span.start <= span.end, "{label}: inverted span {}", span.name);
        assert!(
            span.end <= horizon,
            "{label}: span {} ends past the final clock of its run",
            span.name
        );
    }
}

#[test]
fn observability_is_bit_identical_across_widths_and_chunk_sizes() {
    // Baseline: one worker, 257-row chunks.
    let baseline = sweep(Some(257), 1);
    assert!(
        baseline.iter().any(|(_, d)| !d.violations.all_tids().is_empty()),
        "fixture should contain violations"
    );
    for (label, d) in &baseline {
        assert_surface(label, d);
    }
    for chunk in [Some(257), Some(64 * 1024)] {
        for threads in [1usize, 8] {
            if chunk == Some(257) && threads == 1 {
                continue; // the baseline itself
            }
            let got = sweep(chunk, threads);
            assert_eq!(baseline.len(), got.len());
            for ((label, base), (label2, d)) in baseline.iter().zip(&got) {
                assert_eq!(label, label2);
                let cell = format!("{label} @threads={threads}, chunk={chunk:?}");
                // Snapshot and trace types compare f64s through bits.
                assert_eq!(base.metrics, d.metrics, "{cell}: metrics snapshot diverged");
                assert_eq!(base.trace, d.trace, "{cell}: trace diverged");
                assert_eq!(
                    base.metrics.expose(),
                    d.metrics.expose(),
                    "{cell}: exposition text diverged"
                );
            }
        }
    }
}
