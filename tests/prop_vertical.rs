//! Property-based tests for the vertical-partition results (§V):
//! Proposition 7 (dependency preservation ⇔ local checkability),
//! refinement optimality relations, and shipment-based vertical
//! detection equivalence.

use distributed_cfd::prelude::*;
use distributed_cfd::vertical::locally_checkable_at;
use proptest::prelude::*;
use std::sync::Arc;

fn schema() -> Arc<Schema> {
    Schema::builder("r")
        .attr("id", ValueType::Int)
        .attr("a", ValueType::Int)
        .attr("b", ValueType::Int)
        .attr("c", ValueType::Str)
        .attr("d", ValueType::Str)
        .key(&["id"])
        .build()
        .unwrap()
}

/// Runs one facade request over a vertical partition.
fn run_on(partition: &VerticalPartition, sigma: &[Cfd], mode: ShipMode) -> Detection {
    DetectRequest::over(partition.clone())
        .cfds(sigma.iter().cloned())
        .ship_mode(mode)
        .run()
        .expect("generated requests are valid")
}

fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u8, u8)>> {
    prop::collection::vec((0..4i64, 0..4i64, 0..3u8, 0..3u8), 1..40)
}

fn build_relation(rows: &[(i64, i64, u8, u8)]) -> Relation {
    Relation::from_rows(
        schema(),
        rows.iter()
            .enumerate()
            .map(|(i, &(a, b, c, d))| vals![i, a, b, format!("c{c}"), format!("d{d}")])
            .collect(),
    )
    .unwrap()
}

/// Random two-fragment vertical split of {a, b, c, d} (id implicit).
fn arb_split() -> impl Strategy<Value = Vec<bool>> {
    prop::collection::vec(any::<bool>(), 4)
}

fn groups_from_split(rel: &Relation, split: &[bool]) -> Option<VerticalPartition> {
    let names = ["a", "b", "c", "d"];
    let left: Vec<&str> = names.iter().zip(split).filter(|(_, &s)| s).map(|(n, _)| *n).collect();
    let right: Vec<&str> = names.iter().zip(split).filter(|(_, &s)| !s).map(|(n, _)| *n).collect();
    if left.is_empty() || right.is_empty() {
        return None;
    }
    VerticalPartition::by_attribute_groups(rel, &[&left, &right]).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Proposition 7, forward direction, checked empirically: if a
    /// partition is dependency preserving, then the union of fragment-
    /// local violations (computable without shipment) equals the global
    /// violations on every instance. Locally checkable here means the
    /// CFD fits a fragment (its Γ-membership witness).
    #[test]
    fn preservation_implies_local_checkability(
        rows in arb_rows(),
        split in arb_split(),
        lhs_pick in 0usize..3,
    ) {
        let rel = build_relation(&rows);
        let Some(partition) = groups_from_split(&rel, &split) else {
            return Ok(()); // degenerate split
        };
        let s = schema();
        let cfd = match lhs_pick {
            0 => parse_cfd(&s, "f", "([a] -> [b])").unwrap(),
            1 => parse_cfd(&s, "f", "([a, b] -> [c])").unwrap(),
            _ => parse_cfd(&s, "f", "([c] -> [d])").unwrap(),
        };
        let groups = partition.attr_groups();
        if is_preserved(s.arity(), &groups, std::slice::from_ref(&cfd)) {
            // For a singleton Σ, preservation of φ means φ itself fits a
            // fragment (no other CFDs can help imply it)…
            prop_assert!(locally_checkable_at(&cfd, &groups).is_some());
            // …and vertical detection needs no shipment.
            let out = run_on(&partition, std::slice::from_ref(&cfd), ShipMode::Full);
            prop_assert_eq!(out.shipped_tuples, 0);
            let global = detect(&rel, &cfd);
            prop_assert_eq!(&out.violations.all_tids(), &global.tids);
        }
    }

    /// Vertical detection with shipment ≡ centralized detection, both
    /// ship modes, arbitrary splits.
    #[test]
    fn vertical_detection_equals_centralized(
        rows in arb_rows(),
        split in arb_split(),
    ) {
        let rel = build_relation(&rows);
        let Some(partition) = groups_from_split(&rel, &split) else {
            return Ok(());
        };
        let s = schema();
        let sigma = vec![
            parse_cfd(&s, "f1", "([a, b] -> [c])").unwrap(),
            parse_cfd(&s, "f2", "([a=1, c] -> [d])").unwrap(),
        ];
        let global = detect_set(&rel, &sigma);
        for mode in [ShipMode::Full, ShipMode::Filtered] {
            let out = run_on(&partition, &sigma, mode);
            prop_assert_eq!(out.violations.all_tids(), global.all_tids(), "{:?}", mode);
        }
    }

    /// Filtered shipping never ships more than full shipping and never
    /// changes results.
    #[test]
    fn filtered_mode_dominates(
        rows in arb_rows(),
        split in arb_split(),
        pin in 0..4i64,
    ) {
        let rel = build_relation(&rows);
        let Some(partition) = groups_from_split(&rel, &split) else {
            return Ok(());
        };
        let s = schema();
        let cfd = parse_cfd(&s, "f", &format!("([a={pin}, b] -> [d])")).unwrap();
        let full = run_on(&partition, std::slice::from_ref(&cfd), ShipMode::Full);
        let filt = run_on(&partition, std::slice::from_ref(&cfd), ShipMode::Filtered);
        prop_assert!(filt.shipped_tuples <= full.shipped_tuples);
        prop_assert_eq!(filt.violations.all_tids(), full.violations.all_tids());
    }

    /// Refinement: greedy is always preserving and never smaller than
    /// the exact optimum.
    #[test]
    fn greedy_refinement_bounds_exact(
        split in arb_split(),
        which in 0usize..3,
    ) {
        let s = schema();
        let sigma = match which {
            0 => vec![parse_cfd(&s, "f", "([a] -> [b])").unwrap()],
            1 => vec![
                parse_cfd(&s, "f1", "([a] -> [b])").unwrap(),
                parse_cfd(&s, "f2", "([b] -> [c])").unwrap(),
            ],
            _ => vec![
                parse_cfd(&s, "f1", "([a, b] -> [c])").unwrap(),
                parse_cfd(&s, "f2", "([c] -> [d])").unwrap(),
            ],
        };
        // Schema-level groups (no data needed).
        let names = ["a", "b", "c", "d"];
        let key = s.require("id").unwrap();
        let mut left = vec![key];
        let mut right = vec![key];
        for (n, &sv) in names.iter().zip(&split) {
            let id = s.require(n).unwrap();
            if sv { left.push(id) } else { right.push(id) }
        }
        let groups = vec![left, right];
        let greedy = refine_greedy(s.arity(), &groups, &sigma);
        prop_assert!(is_preserved(s.arity(), &greedy.apply(&groups), &sigma));
        if let Some(exact) = refine_exact(s.arity(), &groups, &sigma, 4) {
            prop_assert!(exact.size() <= greedy.size(),
                "exact {} > greedy {}", exact.size(), greedy.size());
            prop_assert!(is_preserved(s.arity(), &exact.apply(&groups), &sigma));
        }
    }
}
