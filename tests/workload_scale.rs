//! Workload-scale integration tests: the generated CUST / XREF datasets
//! with injected errors, run through every algorithm, checking both the
//! findings and the paper's comparative claims at this scale.

use distributed_cfd::datagen::cust::{cust_main_cfd, cust_overlapping_pair, CustConfig};
use distributed_cfd::datagen::inject_errors;
use distributed_cfd::datagen::xref::{xref_main_cfd, xref_second_cfd, XrefConfig};
use distributed_cfd::prelude::*;

/// Runs one facade request over a horizontal partition.
fn run_on(
    partition: &HorizontalPartition,
    sigma: &[Cfd],
    algorithm: Algorithm,
    cfg: &RunConfig,
) -> Detection {
    DetectRequest::over(partition.clone())
        .cfds(sigma.iter().cloned())
        .algorithm(algorithm)
        .config(*cfg)
        .run()
        .expect("workload fixtures are valid requests")
}

fn cust() -> (Relation, CustConfig) {
    let config = CustConfig { n_tuples: 20_000, ..CustConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "street", 0.02, 1);
    (dirty, config)
}

#[test]
fn all_single_cfd_algorithms_agree_on_cust() {
    let (rel, config) = cust();
    let cfd = cust_main_cfd(rel.schema(), &config, 255);
    let baseline = detect_simple(&rel, &cfd);
    assert!(
        baseline.tids.len() > 100,
        "the 2% error injection must produce plenty of violations, got {}",
        baseline.tids.len()
    );
    let partition = HorizontalPartition::round_robin(&rel, 8).unwrap();
    let cfg = RunConfig::default();
    for alg in [Algorithm::CtrDetect, Algorithm::PatDetectS, Algorithm::PatDetectRT] {
        let d = run_on(&partition, &[cfd.to_cfd()], alg, &cfg);
        assert_eq!(d.violations.all_tids(), baseline.tids, "{alg:?}");
    }
}

#[test]
fn comparative_claims_hold_on_cust() {
    let (rel, config) = cust();
    let cfd = cust_main_cfd(rel.schema(), &config, 255);
    let partition = HorizontalPartition::round_robin(&rel, 8).unwrap();
    let cfg = RunConfig::default();
    let ctr = run_on(&partition, &[cfd.to_cfd()], Algorithm::CtrDetect, &cfg);
    let pats = run_on(&partition, &[cfd.to_cfd()], Algorithm::PatDetectS, &cfg);
    let patrt = run_on(&partition, &[cfd.to_cfd()], Algorithm::PatDetectRT, &cfg);
    // PATDETECTS minimizes shipment among the three.
    assert!(pats.shipped_tuples <= ctr.shipped_tuples);
    assert!(pats.shipped_tuples <= patrt.shipped_tuples);
    // Per-pattern algorithms beat the central one on simulated response
    // time (the paper: "by a factor of more than two").
    assert!(patrt.response_time * 2.0 < ctr.response_time);
}

#[test]
fn response_time_decreases_with_sites_on_cust() {
    let (rel, config) = cust();
    let cfd = cust_main_cfd(rel.schema(), &config, 105);
    let cfg = RunConfig::default();
    let mut last = f64::INFINITY;
    for n_sites in [2usize, 4, 8] {
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let d = run_on(&partition, &[cfd.to_cfd()], Algorithm::PatDetectRT, &cfg);
        assert!(
            d.response_time < last,
            "response time must fall with sites: {} !< {last}",
            d.response_time
        );
        last = d.response_time;
    }
}

#[test]
fn multi_cfd_claims_hold_on_xref() {
    let config = XrefConfig { n_tuples: 20_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "source", 0.02, 3);
    let (dirty, _) = inject_errors(&dirty, "db_release", 0.02, 4);
    let sigma = vec![
        xref_main_cfd(dirty.schema(), &config.organisms).to_cfd(),
        xref_second_cfd(dirty.schema(), &config.organisms),
    ];
    let baseline = detect_set(&dirty, &sigma);
    let partition = HorizontalPartition::round_robin(&dirty, 6).unwrap();
    let cfg = RunConfig::default();
    let seq = run_on(&partition, &sigma, Algorithm::seq_detect(), &cfg);
    let clust = run_on(&partition, &sigma, Algorithm::clust_detect(), &cfg);
    assert_eq!(seq.violations.all_tids(), baseline.all_tids());
    assert_eq!(clust.violations.all_tids(), baseline.all_tids());
    // The paper's Exp-5 claims, at this scale:
    assert!(clust.shipped_tuples < seq.shipped_tuples, "clustering must save shipment");
    assert!(clust.response_time < seq.response_time, "clustering must save time");
}

#[test]
fn overlapping_cust_pair_round_trips_through_both_multis() {
    let (rel, config) = cust();
    let sigma = cust_overlapping_pair(rel.schema(), &config, 60);
    let baseline = detect_set(&rel, &sigma);
    let partition = HorizontalPartition::round_robin(&rel, 4).unwrap();
    let cfg = RunConfig::default();
    for alg in [Algorithm::seq_detect(), Algorithm::clust_detect()] {
        let d = run_on(&partition, &sigma, alg, &cfg);
        for (name, vs) in &baseline.per_cfd {
            let (_, got) = d
                .violations
                .per_cfd
                .iter()
                .find(|(n, _)| n.starts_with(name.split(':').next().unwrap()))
                .unwrap_or_else(|| panic!("{alg:?}: missing CFD {name}"));
            assert_eq!(&got.tids, &vs.tids, "{:?} / {}", alg, name);
        }
    }
}

#[test]
fn fragmentation_strategy_does_not_change_results() {
    let config = XrefConfig { n_tuples: 10_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "source", 0.03, 5);
    let cfd = xref_main_cfd(dirty.schema(), &config.organisms);
    let baseline = detect_simple(&dirty, &cfd);
    let cfg = RunConfig::default();
    let by_rr = HorizontalPartition::round_robin(&dirty, 7).unwrap();
    let by_type = HorizontalPartition::by_attribute(&dirty, "info_type", 7).unwrap();
    let by_org = HorizontalPartition::by_attribute(&dirty, "organism", 3).unwrap();
    for partition in [&by_rr, &by_type, &by_org] {
        let d = run_on(partition, &[cfd.to_cfd()], Algorithm::PatDetectS, &cfg);
        assert_eq!(d.violations.all_tids(), baseline.tids);
    }
}

#[test]
fn attribute_fragmentation_reduces_shipment_for_correlated_cfds() {
    // When the fragmentation attribute appears in the CFD's LHS
    // patterns, σ blocks are site-local and shipment drops.
    let config = XrefConfig { n_tuples: 10_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "source", 0.03, 5);
    let cfd = xref_main_cfd(dirty.schema(), &config.organisms);
    let cfg = RunConfig::default();
    let by_rr = HorizontalPartition::round_robin(&dirty, 3).unwrap();
    let by_org = HorizontalPartition::by_attribute(&dirty, "organism", 3).unwrap();
    let rr = run_on(&by_rr, &[cfd.to_cfd()], Algorithm::PatDetectS, &cfg);
    let org = run_on(&by_org, &[cfd.to_cfd()], Algorithm::PatDetectS, &cfg);
    assert!(
        org.shipped_tuples < rr.shipped_tuples / 2,
        "organism-aligned fragmentation should at least halve shipment: {} vs {}",
        org.shipped_tuples,
        rr.shipped_tuples
    );
}
