//! Workload-scale integration tests: the generated CUST / XREF datasets
//! with injected errors, run through every algorithm, checking both the
//! findings and the paper's comparative claims at this scale.

// The suite drives the legacy entry points deliberately: they are the
// pinned reference the new `DetectRequest` façade is proven against
// (see tests/prop_facade.rs), and stay as deprecated shims for one
// release.
#![allow(deprecated)]

use distributed_cfd::datagen::cust::{cust_main_cfd, cust_overlapping_pair, CustConfig};
use distributed_cfd::datagen::inject_errors;
use distributed_cfd::datagen::xref::{xref_main_cfd, xref_second_cfd, XrefConfig};
use distributed_cfd::prelude::*;

fn cust() -> (Relation, CustConfig) {
    let config = CustConfig { n_tuples: 20_000, ..CustConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "street", 0.02, 1);
    (dirty, config)
}

#[test]
fn all_single_cfd_algorithms_agree_on_cust() {
    let (rel, config) = cust();
    let cfd = cust_main_cfd(rel.schema(), &config, 255);
    let baseline = detect_simple(&rel, &cfd);
    assert!(
        baseline.tids.len() > 100,
        "the 2% error injection must produce plenty of violations, got {}",
        baseline.tids.len()
    );
    let partition = HorizontalPartition::round_robin(&rel, 8).unwrap();
    let cfg = RunConfig::default();
    for det in [&CtrDetect as &dyn Detector, &PatDetectS, &PatDetectRT] {
        let d = det.run_simple(&partition, &cfd, &cfg);
        assert_eq!(d.violations.all_tids(), baseline.tids, "{}", det.name());
    }
}

#[test]
fn comparative_claims_hold_on_cust() {
    let (rel, config) = cust();
    let cfd = cust_main_cfd(rel.schema(), &config, 255);
    let partition = HorizontalPartition::round_robin(&rel, 8).unwrap();
    let cfg = RunConfig::default();
    let ctr = CtrDetect.run_simple(&partition, &cfd, &cfg);
    let pats = PatDetectS.run_simple(&partition, &cfd, &cfg);
    let patrt = PatDetectRT.run_simple(&partition, &cfd, &cfg);
    // PATDETECTS minimizes shipment among the three.
    assert!(pats.shipped_tuples <= ctr.shipped_tuples);
    assert!(pats.shipped_tuples <= patrt.shipped_tuples);
    // Per-pattern algorithms beat the central one on simulated response
    // time (the paper: "by a factor of more than two").
    assert!(patrt.response_time * 2.0 < ctr.response_time);
}

#[test]
fn response_time_decreases_with_sites_on_cust() {
    let (rel, config) = cust();
    let cfd = cust_main_cfd(rel.schema(), &config, 105);
    let cfg = RunConfig::default();
    let mut last = f64::INFINITY;
    for n_sites in [2usize, 4, 8] {
        let partition = HorizontalPartition::round_robin(&rel, n_sites).unwrap();
        let d = PatDetectRT.run_simple(&partition, &cfd, &cfg);
        assert!(
            d.response_time < last,
            "response time must fall with sites: {} !< {last}",
            d.response_time
        );
        last = d.response_time;
    }
}

#[test]
fn multi_cfd_claims_hold_on_xref() {
    let config = XrefConfig { n_tuples: 20_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "source", 0.02, 3);
    let (dirty, _) = inject_errors(&dirty, "db_release", 0.02, 4);
    let sigma = vec![
        xref_main_cfd(dirty.schema(), &config.organisms).to_cfd(),
        xref_second_cfd(dirty.schema(), &config.organisms),
    ];
    let baseline = detect_set(&dirty, &sigma);
    let partition = HorizontalPartition::round_robin(&dirty, 6).unwrap();
    let cfg = RunConfig::default();
    let seq = SeqDetect::default().run(&partition, &sigma, &cfg);
    let clust = ClustDetect::default().run(&partition, &sigma, &cfg);
    assert_eq!(seq.violations.all_tids(), baseline.all_tids());
    assert_eq!(clust.violations.all_tids(), baseline.all_tids());
    // The paper's Exp-5 claims, at this scale:
    assert!(clust.shipped_tuples < seq.shipped_tuples, "clustering must save shipment");
    assert!(clust.response_time < seq.response_time, "clustering must save time");
}

#[test]
fn overlapping_cust_pair_round_trips_through_both_multis() {
    let (rel, config) = cust();
    let sigma = cust_overlapping_pair(rel.schema(), &config, 60);
    let baseline = detect_set(&rel, &sigma);
    let partition = HorizontalPartition::round_robin(&rel, 4).unwrap();
    let cfg = RunConfig::default();
    for det in [&SeqDetect::default() as &dyn MultiDetector, &ClustDetect::default()] {
        let d = det.run(&partition, &sigma, &cfg);
        for (name, vs) in &baseline.per_cfd {
            let (_, got) = d
                .violations
                .per_cfd
                .iter()
                .find(|(n, _)| n.starts_with(name.split(':').next().unwrap()))
                .unwrap_or_else(|| panic!("{}: missing CFD {name}", det.name()));
            assert_eq!(&got.tids, &vs.tids, "{} / {}", det.name(), name);
        }
    }
}

#[test]
fn fragmentation_strategy_does_not_change_results() {
    let config = XrefConfig { n_tuples: 10_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "source", 0.03, 5);
    let cfd = xref_main_cfd(dirty.schema(), &config.organisms);
    let baseline = detect_simple(&dirty, &cfd);
    let cfg = RunConfig::default();
    let by_rr = HorizontalPartition::round_robin(&dirty, 7).unwrap();
    let by_type = HorizontalPartition::by_attribute(&dirty, "info_type", 7).unwrap();
    let by_org = HorizontalPartition::by_attribute(&dirty, "organism", 3).unwrap();
    for partition in [&by_rr, &by_type, &by_org] {
        let d = PatDetectS.run_simple(partition, &cfd, &cfg);
        assert_eq!(d.violations.all_tids(), baseline.tids);
    }
}

#[test]
fn attribute_fragmentation_reduces_shipment_for_correlated_cfds() {
    // When the fragmentation attribute appears in the CFD's LHS
    // patterns, σ blocks are site-local and shipment drops.
    let config = XrefConfig { n_tuples: 10_000, ..XrefConfig::default() };
    let clean = config.generate();
    let (dirty, _) = inject_errors(&clean, "source", 0.03, 5);
    let cfd = xref_main_cfd(dirty.schema(), &config.organisms);
    let cfg = RunConfig::default();
    let by_rr = HorizontalPartition::round_robin(&dirty, 3).unwrap();
    let by_org = HorizontalPartition::by_attribute(&dirty, "organism", 3).unwrap();
    let rr = PatDetectS.run_simple(&by_rr, &cfd, &cfg);
    let org = PatDetectS.run_simple(&by_org, &cfd, &cfg);
    assert!(
        org.shipped_tuples < rr.shipped_tuples / 2,
        "organism-aligned fragmentation should at least halve shipment: {} vs {}",
        org.shipped_tuples,
        rr.shipped_tuples
    );
}
